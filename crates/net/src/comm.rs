//! MPI-style communicator over a pluggable [`Transport`].
//!
//! All collectives (barrier, broadcast, gather, allgather, reductions,
//! alltoallv) are built from point-to-point sends exactly as an MPI
//! implementation would, against the [`Transport`] contract (per-source
//! FIFO, non-blocking send). The same `Communicator` therefore runs
//! unchanged over the in-process channel mesh
//! ([`LocalTransport`](crate::transport::LocalTransport)) and the
//! multi-process TCP mesh ([`TcpTransport`](crate::tcp::TcpTransport)).
//!
//! ## Failure model
//!
//! Every operation that touches the transport returns
//! [`demsort_types::Result`]: a dead or silent peer surfaces as
//! [`Error::Comm`](demsort_types::Error) on the *surviving* ranks
//! within the transport's receive timeout — collectives never panic and
//! never hang forever. Callers (the SPMD algorithms in `demsort-core`)
//! propagate the error out of the sort, so each rank of a cluster job
//! ends with a per-rank `Result` instead of unwinding, and a worker
//! process can report a structured failure to its launcher. Unlike
//! MPI's default `MPI_ERRORS_ARE_FATAL`, this is the
//! `MPI_ERRORS_RETURN` world, end to end.
//!
//! All remote traffic is metered per peer into [`CommCounters`] — the
//! communication volumes reported in the paper's analysis (Section
//! IV-D) are read off these counters, and they are *transport
//! independent*: a TCP run and an in-process run of the same job report
//! identical message and byte totals.
//!
//! Self-messages short-circuit (a real MPI does a memcpy); they are not
//! counted as network traffic.
//!
//! Control-word collectives (`allgather_u64` and the reductions built
//! on it) encode on the stack and send borrowed bytes
//! ([`Transport::send_bytes`]), so the hot send path allocates no
//! per-message `Vec` on transports that serialize onto a wire; bulk
//! payload senders can do the same via [`encode_u64s_into`] plus a
//! reused buffer.

use crate::transport::Transport;
use demsort_types::trace::TraceEv;
use demsort_types::{CommCounters, Error, Result, Tracer};
use std::cell::Cell;

/// Per-peer traffic cells (interior mutability: the communicator is
/// `!Sync`, owned by its PE).
#[derive(Default)]
struct PeerMeter {
    bytes_sent: Cell<u64>,
    bytes_recv: Cell<u64>,
    messages: Cell<u64>,
}

/// One PE's endpoint of the cluster interconnect.
///
/// Not `Sync`: a communicator belongs to its PE thread/process, like an
/// MPI rank.
pub struct Communicator {
    transport: Box<dyn Transport>,
    peers: Vec<PeerMeter>,
    tracer: Tracer,
}

impl Communicator {
    /// Wrap a transport endpoint into a communicator.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        let peers = (0..transport.size()).map(|_| PeerMeter::default()).collect();
        Self { transport, peers, tracer: Tracer::off() }
    }

    /// Attach a tracer: every collective is recorded as an enter/exit
    /// span in this rank's journal. Trace output does not touch the
    /// transport, so tracing never changes the metered traffic.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This rank's tracer handle (the off tracer unless
    /// [`set_tracer`](Self::set_tracer) was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Record `f` as a collective span, closing it on both the success
    /// and the error path.
    fn traced<T>(&self, name: &'static str, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let ev = || TraceEv::Collective { name: std::borrow::Cow::Borrowed(name) };
        let span = self.tracer.begin(ev());
        let out = f();
        self.tracer.end(span, ev());
        out
    }

    /// This PE's rank (`0..size`).
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Number of PEs.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// Traffic counters so far (sum over peers; self-traffic is free).
    pub fn counters(&self) -> CommCounters {
        let mut total = CommCounters::default();
        for p in &self.peers {
            total.bytes_sent += p.bytes_sent.get();
            total.bytes_recv += p.bytes_recv.get();
            total.messages += p.messages.get();
        }
        total
    }

    /// Traffic exchanged with one peer (zeros for `peer == rank`).
    pub fn peer_counters(&self, peer: usize) -> CommCounters {
        let p = &self.peers[peer];
        CommCounters {
            bytes_sent: p.bytes_sent.get(),
            bytes_recv: p.bytes_recv.get(),
            messages: p.messages.get(),
        }
    }

    fn meter_send(&self, to: usize, bytes: usize) {
        if to != self.rank() {
            let p = &self.peers[to];
            p.bytes_sent.set(p.bytes_sent.get() + bytes as u64);
            p.messages.set(p.messages.get() + 1);
        }
    }

    /// Send `msg` to PE `to` (non-blocking; the transport buffers).
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if the peer's connection
    /// is gone — a dead peer fails the send, it does not abort the
    /// process.
    pub fn send(&self, to: usize, msg: Vec<u8>) -> Result<()> {
        self.meter_send(to, msg.len());
        self.transport.send(to, msg)
    }

    /// Send a borrowed message — wire transports copy straight into
    /// their buffered writer, no intermediate allocation.
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if the peer's connection
    /// is gone.
    pub fn send_bytes(&self, to: usize, msg: &[u8]) -> Result<()> {
        self.meter_send(to, msg.len());
        self.transport.send_bytes(to, msg)
    }

    /// Receive the next message from PE `from` (blocking, FIFO per
    /// source).
    ///
    /// Flushes buffered sends first, so blocking here can never
    /// deadlock on bytes parked in this PE's own write buffers; this is
    /// the transport's collective-boundary flush point.
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if the peer is gone or the
    /// transport's receive timeout elapses — a dead peer is an error on
    /// every surviving rank, never a hang (the fallible analogue of an
    /// MPI error handler aborting the job).
    pub fn recv(&self, from: usize) -> Result<Vec<u8>> {
        self.transport.flush()?;
        let msg = self.transport.recv(from)?;
        if from != self.rank() {
            let p = &self.peers[from];
            p.bytes_recv.set(p.bytes_recv.get() + msg.len() as u64);
        }
        Ok(msg)
    }

    /// Send one control word, encoded on the stack — no allocation.
    fn send_u64(&self, to: usize, x: u64) -> Result<()> {
        self.send_bytes(to, &x.to_le_bytes())
    }

    fn recv_u64(&self, from: usize) -> Result<u64> {
        let buf = self.recv(from)?;
        let word: [u8; 8] = buf.as_slice().try_into().map_err(|_| {
            Error::comm(format!(
                "rank {from} sent a {}-byte frame where an 8-byte control word was expected",
                buf.len()
            ))
        })?;
        Ok(u64::from_le_bytes(word))
    }

    // ---------------------------------------------------------------
    // Collectives
    // ---------------------------------------------------------------

    /// Dissemination barrier: `⌈log2 P⌉` rounds.
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if any round's partner is
    /// dead or silent past the receive timeout.
    pub fn barrier(&self) -> Result<()> {
        self.traced("barrier", || {
            let mut dist = 1;
            while dist < self.size() {
                let to = (self.rank() + dist) % self.size();
                let from = (self.rank() + self.size() - dist) % self.size();
                self.send_bytes(to, &[])?;
                let _ = self.recv(from)?;
                dist <<= 1;
            }
            Ok(())
        })
    }

    /// Broadcast `msg` from `root` to everyone (binomial tree,
    /// `⌈log2 P⌉` depth).
    ///
    /// In the rotated rank space (root = 0) the parent of `v > 0` is
    /// `v` with its lowest set bit cleared, and the children of `v` are
    /// `v + 2^k` for all `2^k` below that bit (all powers of two for
    /// the root).
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if a tree parent or child
    /// is unreachable.
    pub fn broadcast(&self, root: usize, msg: Vec<u8>) -> Result<Vec<u8>> {
        self.traced("broadcast", || {
            let size = self.size();
            let vrank = (self.rank() + size - root) % size;
            let data = if vrank == 0 {
                msg
            } else {
                let parent_v = vrank & (vrank - 1);
                self.recv((parent_v + root) % size)?
            };
            let child_bit_limit = if vrank == 0 { size } else { vrank & vrank.wrapping_neg() };
            let mut b = 1;
            while b < child_bit_limit {
                let child_v = vrank + b;
                if child_v < size {
                    self.send_bytes((child_v + root) % size, &data)?;
                }
                b <<= 1;
            }
            // The root and interior tree nodes end the collective on a
            // send: flush so children never wait on locally parked
            // frames.
            self.transport.flush()?;
            Ok(data)
        })
    }

    /// Gather everyone's `msg` at `root`; non-roots get an empty vec.
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if the root cannot reach a
    /// contributor (or a non-root cannot reach the root).
    #[allow(clippy::needless_range_loop)] // rank loop skips self by index
    pub fn gather(&self, root: usize, msg: Vec<u8>) -> Result<Vec<Vec<u8>>> {
        self.traced("gather", || {
            if self.rank() == root {
                let mut out = vec![Vec::new(); self.size()];
                out[root] = msg;
                for i in 0..self.size() {
                    if i != root {
                        out[i] = self.recv(i)?;
                    }
                }
                Ok(out)
            } else {
                self.send(root, msg)?;
                // Non-roots end the collective on a send: flush so the
                // root never waits on locally parked frames.
                self.transport.flush()?;
                Ok(Vec::new())
            }
        })
    }

    /// Allgather: everyone receives everyone's message, indexed by rank.
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if a ring neighbour dies
    /// mid-collective.
    pub fn allgather(&self, msg: Vec<u8>) -> Result<Vec<Vec<u8>>> {
        self.traced("allgather", || {
            // Simple ring: P-1 rounds, each forwarding one original.
            let size = self.size();
            let mut out = vec![Vec::new(); size];
            out[self.rank()] = msg;
            for round in 1..size {
                let to = (self.rank() + 1) % size;
                let from = (self.rank() + size - 1) % size;
                // forward the message that originated `round-1` hops back
                let orig = (self.rank() + size - (round - 1)) % size;
                self.send_bytes(to, &out[orig])?;
                let recv_orig = (self.rank() + size - round) % size;
                out[recv_orig] = self.recv(from)?;
            }
            Ok(out)
        })
    }

    /// Allgather of one `u64` per PE (stack-encoded ring — no
    /// per-message allocation on wire transports).
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) on a dead ring neighbour
    /// or a malformed (non-8-byte) control frame.
    pub fn allgather_u64(&self, x: u64) -> Result<Vec<u64>> {
        self.traced("allgather_u64", || {
            let size = self.size();
            let mut out = vec![0u64; size];
            out[self.rank()] = x;
            for round in 1..size {
                let to = (self.rank() + 1) % size;
                let from = (self.rank() + size - 1) % size;
                let orig = (self.rank() + size - (round - 1)) % size;
                self.send_u64(to, out[orig])?;
                let recv_orig = (self.rank() + size - round) % size;
                out[recv_orig] = self.recv_u64(from)?;
            }
            Ok(out)
        })
    }

    /// Allreduce of a `u64` with an associative, commutative `op`.
    ///
    /// # Errors
    /// Propagates the underlying [`allgather_u64`](Self::allgather_u64)
    /// failure.
    pub fn allreduce_u64(&self, x: u64, op: impl Fn(u64, u64) -> u64) -> Result<u64> {
        Ok(self.allgather_u64(x)?.into_iter().reduce(&op).expect("size >= 1"))
    }

    /// Sum-allreduce convenience.
    ///
    /// # Errors
    /// See [`allreduce_u64`](Self::allreduce_u64).
    pub fn allreduce_sum(&self, x: u64) -> Result<u64> {
        self.allreduce_u64(x, |a, b| a.wrapping_add(b))
    }

    /// Max-allreduce convenience.
    ///
    /// # Errors
    /// See [`allreduce_u64`](Self::allreduce_u64).
    pub fn allreduce_max(&self, x: u64) -> Result<u64> {
        self.allreduce_u64(x, |a, b| a.max(b))
    }

    /// Logical-and allreduce (for "are we all done?" loops).
    ///
    /// # Errors
    /// See [`allreduce_u64`](Self::allreduce_u64).
    pub fn allreduce_and(&self, x: bool) -> Result<bool> {
        Ok(self.allreduce_u64(x as u64, |a, b| a & b)? == 1)
    }

    /// Exclusive prefix sum of `x` over ranks (`rank 0 gets 0`).
    ///
    /// # Errors
    /// See [`allgather_u64`](Self::allgather_u64).
    pub fn exscan_sum(&self, x: u64) -> Result<u64> {
        Ok(self.allgather_u64(x)?.iter().take(self.rank()).sum())
    }

    /// Personalized all-to-all: `msgs[j]` goes to PE `j`; returns what
    /// each PE sent us, indexed by source rank.
    ///
    /// Sends happen before receives; unbounded transport buffering
    /// makes this deadlock-free without MPI's internal buffering
    /// concerns.
    ///
    /// # Errors
    /// [`Error::Comm`](demsort_types::Error) if any destination is
    /// unreachable or any source goes silent past the receive timeout.
    #[allow(clippy::needless_range_loop)] // rank loop skips self by index
    pub fn alltoallv(&self, msgs: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>> {
        assert_eq!(msgs.len(), self.size(), "need exactly one message per PE");
        self.traced("alltoallv", || {
            let mut out = vec![Vec::new(); self.size()];
            for (j, m) in msgs.into_iter().enumerate() {
                if j == self.rank() {
                    out[j] = m; // self-delivery without the transport round-trip
                } else {
                    self.send(j, m)?;
                }
            }
            for i in 0..self.size() {
                if i != self.rank() {
                    out[i] = self.recv(i)?;
                }
            }
            Ok(out)
        })
    }
}

/// Encode a `u64` slice little-endian into a fresh buffer.
pub fn encode_u64s(xs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    encode_u64s_into(xs, &mut out);
    out
}

/// Encode a `u64` slice little-endian into `out` (cleared first) —
/// reuse one buffer across messages to skip the per-message allocation.
pub fn encode_u64s_into(xs: &[u64], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Decode a little-endian `u64` buffer into a fresh vector.
///
/// # Errors
/// [`Error::Comm`](demsort_types::Error) if the buffer length is not a
/// multiple of 8 — a peer's protocol violation must never panic the
/// receiver.
pub fn decode_u64s(buf: &[u8]) -> Result<Vec<u64>> {
    let mut out = Vec::with_capacity(buf.len() / 8);
    decode_u64s_into(buf, &mut out)?;
    Ok(out)
}

/// Decode a little-endian `u64` buffer into `out` (cleared first).
///
/// # Errors
/// [`Error::Comm`](demsort_types::Error) if the buffer length is not a
/// multiple of 8.
pub fn decode_u64s_into(buf: &[u8], out: &mut Vec<u64>) -> Result<()> {
    if !buf.len().is_multiple_of(8) {
        return Err(Error::comm(format!(
            "u64 buffer of {} bytes is not a whole number of control words",
            buf.len()
        )));
    }
    out.clear();
    out.reserve(buf.len() / 8);
    out.extend(buf.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;

    #[test]
    fn u64_codec_roundtrip() {
        let xs = vec![0u64, 1, u64::MAX, 0xDEAD_BEEF];
        assert_eq!(decode_u64s(&encode_u64s(&xs)).expect("aligned"), xs);
    }

    #[test]
    fn u64_codec_rejects_misaligned_buffers() {
        assert!(matches!(decode_u64s(&[1, 2, 3]), Err(demsort_types::Error::Comm(_))));
        let mut out = vec![7u64];
        assert!(decode_u64s_into(&[0; 9], &mut out).is_err());
    }

    #[test]
    fn u64_codec_reuses_buffers() {
        let mut buf = Vec::new();
        let mut out = Vec::new();
        for xs in [vec![1u64, 2, 3], vec![u64::MAX], vec![]] {
            encode_u64s_into(&xs, &mut buf);
            assert_eq!(buf.len(), xs.len() * 8);
            decode_u64s_into(&buf, &mut out).expect("aligned");
            assert_eq!(out, xs);
        }
    }

    #[test]
    fn p2p_send_recv() {
        let results = run_cluster(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![1, 2, 3]).expect("send");
                c.recv(1).expect("recv")
            } else {
                let got = c.recv(0).expect("recv");
                c.send(0, vec![9]).expect("send");
                got
            }
        });
        assert_eq!(results[0], vec![9]);
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn barrier_all_sizes() {
        for p in 1..=9 {
            run_cluster(p, |c| {
                for _ in 0..3 {
                    c.barrier().expect("barrier");
                }
            });
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in 1..=8 {
            for root in 0..p {
                let results = run_cluster(p, move |c| {
                    let msg = if c.rank() == root { vec![42, root as u8] } else { Vec::new() };
                    c.broadcast(root, msg).expect("broadcast")
                });
                for r in results {
                    assert_eq!(r, vec![42, root as u8]);
                }
            }
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        for p in 1..=8 {
            let results = run_cluster(p, |c| {
                c.allgather(vec![c.rank() as u8; c.rank() + 1]).expect("gather")
            });
            for r in results {
                for (i, m) in r.iter().enumerate() {
                    assert_eq!(m, &vec![i as u8; i + 1]);
                }
            }
        }
    }

    #[test]
    fn reductions_and_scan() {
        let results = run_cluster(5, |c| {
            let sum = c.allreduce_sum(c.rank() as u64 + 1).expect("sum");
            let max = c.allreduce_max(c.rank() as u64).expect("max");
            let and_all = c.allreduce_and(true).expect("and");
            let and_one = c.allreduce_and(c.rank() != 2).expect("and");
            let ex = c.exscan_sum(c.rank() as u64 + 1).expect("exscan");
            (sum, max, and_all, and_one, ex)
        });
        for (rank, (sum, max, and_all, and_one, ex)) in results.into_iter().enumerate() {
            assert_eq!(sum, 15);
            assert_eq!(max, 4);
            assert!(and_all);
            assert!(!and_one);
            assert_eq!(ex, (1..=rank as u64).sum::<u64>());
        }
    }

    #[test]
    fn alltoallv_permutes() {
        let p = 6;
        let results = run_cluster(p, move |c| {
            let msgs: Vec<Vec<u8>> = (0..p).map(|j| vec![c.rank() as u8, j as u8, 7]).collect();
            c.alltoallv(msgs).expect("alltoallv")
        });
        for (me, r) in results.into_iter().enumerate() {
            for (src, m) in r.into_iter().enumerate() {
                assert_eq!(m, vec![src as u8, me as u8, 7]);
            }
        }
    }

    #[test]
    fn dead_peer_fails_the_collective_with_comm_error() {
        // Rank 1 exits before the barrier; rank 0's barrier must return
        // Error::Comm instead of panicking or hanging.
        let results = run_cluster(2, |c| {
            if c.rank() == 1 {
                return Ok(());
            }
            c.barrier()
        });
        assert!(results[1].is_ok());
        let err = results[0].as_ref().expect_err("dead peer must fail the barrier");
        assert!(matches!(err, demsort_types::Error::Comm(_)), "{err}");
    }

    #[test]
    fn counters_meter_remote_traffic_only() {
        let results = run_cluster(2, |c| {
            c.send(c.rank(), vec![0; 100]).expect("self send"); // self: free
            let _ = c.recv(c.rank()).expect("self recv");
            c.send(1 - c.rank(), vec![0; 50]).expect("send");
            let _ = c.recv(1 - c.rank()).expect("recv");
            c.counters()
        });
        for c in results {
            assert_eq!(c.bytes_sent, 50);
            assert_eq!(c.bytes_recv, 50);
            assert_eq!(c.messages, 1);
        }
    }

    #[test]
    fn collectives_emit_enter_exit_spans() {
        use demsort_types::trace::{validate_rank_journal, TraceEv};
        use demsort_types::Tracer;
        let results = run_cluster(3, |mut c| {
            let rank = c.rank();
            c.set_tracer(Tracer::to_buffer(rank));
            c.barrier().expect("barrier");
            let _ = c.allreduce_sum(1).expect("sum");
            (c.tracer().clone().drain(), c.counters())
        });
        // Same job untraced: tracing must not change the metered traffic.
        let untraced = run_cluster(3, |c| {
            c.barrier().expect("barrier");
            let _ = c.allreduce_sum(1).expect("sum");
            c.counters()
        });
        for (rank, (recs, counters)) in results.into_iter().enumerate() {
            assert_eq!(counters, untraced[rank], "rank {rank} metering changed");
            validate_rank_journal(&recs).expect("valid journal");
            assert!(recs.iter().all(|r| r.rank == rank));
            let names: Vec<String> = recs
                .iter()
                .filter_map(|r| match (&r.op, &r.ev) {
                    (demsort_types::trace::TraceOp::Begin(_), TraceEv::Collective { name }) => {
                        Some(name.to_string())
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(names, vec!["barrier".to_string(), "allgather_u64".to_string()]);
        }
    }

    #[test]
    fn per_peer_metering_sums_to_totals() {
        let p = 3;
        let results = run_cluster(p, move |c| {
            // Send j+1 bytes to each peer j; receive theirs.
            for j in 0..p {
                if j != c.rank() {
                    c.send(j, vec![0; j + 1]).expect("send");
                }
            }
            for j in 0..p {
                if j != c.rank() {
                    let _ = c.recv(j).expect("recv");
                }
            }
            (0..p).map(|j| c.peer_counters(j)).collect::<Vec<_>>()
        });
        for (me, peers) in results.into_iter().enumerate() {
            let mut sum = CommCounters::default();
            for (j, pc) in peers.iter().enumerate() {
                if j == me {
                    assert_eq!(*pc, CommCounters::default(), "self-traffic is free");
                } else {
                    assert_eq!(pc.bytes_sent, j as u64 + 1, "PE {me} -> {j}");
                    assert_eq!(pc.bytes_recv, me as u64 + 1, "PE {me} <- {j}");
                    assert_eq!(pc.messages, 1);
                }
                sum = sum.merge(pc);
            }
            let expect_sent: u64 = (0..p).filter(|&j| j != me).map(|j| j as u64 + 1).sum();
            assert_eq!(sum.bytes_sent, expect_sent);
        }
    }
}
