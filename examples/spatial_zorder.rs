//! Space-filling-curve ordering — the paper's second motivation:
//! "arrange geometrical data such that close-by data can be processed
//! together (e.g., using space filling curves)."
//!
//! 2-D points get Morton (Z-order) keys; sorting by the key places
//! spatially close points close together on disk — and the canonical
//! output means each PE ends up owning a contiguous region of the
//! curve, ready for parallel spatial processing.
//!
//! ```sh
//! cargo run --release --example spatial_zorder
//! ```

use demsort::prelude::*;
use demsort::workloads::splitmix64;

/// Interleave the low 32 bits of x and y into a 64-bit Morton code.
fn morton(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64;
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    (spread(x) << 1) | spread(y)
}

/// Invert one spread dimension of a Morton code.
fn unspread(mut v: u64) -> u32 {
    v &= 0x5555_5555_5555_5555;
    v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

fn decode(key: u64) -> (u32, u32) {
    (unspread(key >> 1), unspread(key))
}

fn main() {
    let pes = 4;
    let points_per_pe = 150_000usize;
    let machine = MachineConfig {
        pes,
        disks_per_pe: 2,
        block_bytes: 4 << 10,
        mem_bytes_per_pe: (4 << 10) * 256,
        cores_per_pe: 2,
    };
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid config");

    // Points clustered around a few "cities" in a 2^16 × 2^16 world —
    // each PE observed a random mix of all clusters.
    println!("z-ordering {} points across {pes} PEs...", pes * points_per_pe);
    let outcome = demsort::core::canonical::sort_cluster::<Element16, _>(&cfg, move |pe, _| {
        (0..points_per_pe as u64)
            .map(|i| {
                let id = (pe as u64) << 32 | i;
                let r = splitmix64(id);
                let city = r % 5;
                let (cx, cy) = ((city as u32 * 13_001) % 65_536, (city as u32 * 29_411) % 65_536);
                let dx = (splitmix64(r) % 2048) as u32;
                let dy = (splitmix64(r ^ 1) % 2048) as u32;
                let x = (cx + dx) % 65_536;
                let y = (cy + dy) % 65_536;
                Element16::new(morton(x, y), id)
            })
            .collect()
    })
    .expect("sort");

    // Spatial locality: consecutive points on the curve must be close
    // in space. Measure mean L1 distance between curve neighbours on
    // PE 0 versus between random pairs.
    let storage = &outcome.storage;
    let recs = read_records::<Element16>(
        storage.pe(0),
        &outcome.per_pe[0].output.run,
        outcome.per_pe[0].output.elems,
    )
    .expect("read");
    let l1 = |a: u64, b: u64| {
        let (ax, ay) = decode(a);
        let (bx, by) = decode(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as f64
    };
    let neighbour: f64 =
        recs.windows(2).map(|w| l1(w[0].key, w[1].key)).sum::<f64>() / (recs.len() - 1) as f64;
    let random: f64 = (0..recs.len() - 1)
        .map(|i| {
            let j = (splitmix64(i as u64) % recs.len() as u64) as usize;
            l1(recs[i].key, recs[j].key)
        })
        .sum::<f64>()
        / (recs.len() - 1) as f64;
    println!(
        "mean L1 distance: curve neighbours {neighbour:.1} vs random pairs {random:.1} \
         ({:.0}x locality gain)",
        random / neighbour
    );
    assert!(neighbour * 20.0 < random, "Z-order must provide strong locality");

    // Each PE owns one contiguous stretch of the curve.
    for (pe, o) in outcome.per_pe.iter().enumerate() {
        let first = o.output.block_first_keys.first().copied().unwrap_or(0);
        let (x, y) = decode(first);
        println!("PE {pe}: {} points, curve region starts at ({x}, {y})", o.output.elems);
    }
}
