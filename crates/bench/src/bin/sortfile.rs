//! `sortfile` — externally sort a file of SortBenchmark records with
//! CANONICALMERGESORT.
//!
//! ```text
//! sortfile [--transport local|tcp] [--pes P] [--mem-mib M]
//!          [--block-kib K] [--disks D] [--seed S] [--comm-timeout MS]
//!          [--worker-bin PATH] INPUT OUTPUT
//! ```
//!
//! The file is split evenly over `P` PEs, sorted, and the canonical
//! per-PE outputs are concatenated into OUTPUT (which is therefore
//! globally sorted). `--mem-mib` bounds each PE's memory, so files
//! much larger than `P × M` are sorted genuinely externally.
//!
//! `--transport` selects the cluster substrate:
//!
//! * `local` (default) — the in-process cluster: one thread per PE
//!   over the channel mesh.
//! * `tcp` — the multi-process cluster: one `demsort-worker` process
//!   per rank over the loopback TCP mesh (`--ranks` is an alias for
//!   `--pes` in this mode). Identical SPMD code path, identical
//!   counters, real process isolation. The job-building flags are the
//!   same as `demsort-launch`'s (shared via `demsort_bench::procs`).

use demsort_bench::procs::{launch_and_report, TcpJobCli};
use demsort_core::canonical::sort_cluster;
use demsort_core::recio::read_records;
use demsort_types::{AlgoConfig, MachineConfig, Record as _, Record100, SortConfig};
use std::io::{Read, Seek, SeekFrom, Write};

fn main() {
    const BIN: &str = "sortfile";
    let mut cli = TcpJobCli::default();
    let mut transport = "local".to_string();
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if cli.try_flag(BIN, &a, &mut args) {
            continue;
        }
        match a.as_str() {
            "--transport" => {
                transport = args.next().unwrap_or_else(|| die("--transport local|tcp"))
            }
            "--help" | "-h" => {
                println!(
                    "sortfile [--transport local|tcp] [flags] INPUT OUTPUT\n{}",
                    TcpJobCli::FLAG_HELP
                );
                return;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [input, output] = positional.as_slice() else {
        die("usage: sortfile [--transport local|tcp] [flags] INPUT OUTPUT (see --help)");
    };

    match transport.as_str() {
        "local" => sort_local(cli.machine(), input, output),
        "tcp" => {
            let job = cli.job(input, output);
            let worker = cli.worker(BIN);
            launch_and_report(BIN, &job, &worker)
        }
        other => die(&format!("unknown transport {other} (expected local or tcp)")),
    }
}

/// The in-process cluster: one thread per PE over the channel mesh.
fn sort_local(machine: MachineConfig, input: &str, output: &str) {
    let meta = std::fs::metadata(input).unwrap_or_else(|e| die(&format!("stat {input}: {e}")));
    if !meta.len().is_multiple_of(Record100::BYTES as u64) {
        die(&format!("input {input} must be whole 100-byte records"));
    }
    let total_records = (meta.len() / Record100::BYTES as u64) as usize;

    let pes = machine.pes;
    eprintln!(
        "sorting {total_records} records on {pes} in-process PEs ({} each)",
        demsort_types::fmtsize::fmt_bytes(machine.mem_bytes_per_pe as u64)
    );
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid config");

    // Each PE loads its contiguous shard of the file (the same
    // ⌊i·n/p⌋ boundaries the TCP workers use).
    let input_path = input.to_string();
    let outcome = sort_cluster::<Record100, _>(&cfg, move |pe, p| {
        let shard = demsort_types::ranks::owned_range(pe, p, total_records as u64);
        let mut f = std::fs::File::open(&input_path).expect("open input");
        f.seek(SeekFrom::Start(shard.start * Record100::BYTES as u64)).expect("seek");
        let mut bytes = vec![0u8; (shard.end - shard.start) as usize * Record100::BYTES];
        f.read_exact(&mut bytes).expect("read shard");
        let mut recs = Vec::with_capacity((shard.end - shard.start) as usize);
        Record100::decode_slice(&bytes, &mut recs);
        recs
    })
    .unwrap_or_else(|e| {
        eprintln!("sortfile: {e}");
        std::process::exit(1);
    });

    // Concatenate the canonical outputs: globally sorted by key.
    let out =
        std::fs::File::create(output).unwrap_or_else(|e| die(&format!("create {output}: {e}")));
    let mut out = std::io::BufWriter::new(out);
    let mut buf = vec![0u8; Record100::BYTES];
    for (pe, o) in outcome.per_pe.iter().enumerate() {
        let recs = read_records::<Record100>(outcome.storage.pe(pe), &o.output.run, o.output.elems)
            .expect("read output");
        for rec in recs {
            rec.encode(&mut buf);
            out.write_all(&buf).expect("write");
        }
    }
    out.flush().expect("flush");
    eprintln!(
        "done: {} runs, I/O volume {:.2} N, communication {:.2} N",
        outcome.per_pe[0].runs,
        outcome.report.io_volume_over_n(),
        outcome.report.comm_volume_over_n(),
    );
}

fn die(msg: &str) -> ! {
    demsort_bench::procs::cli_die("sortfile", msg)
}
