//! Recycled block-buffer pool: the allocation-free data plane.
//!
//! Steady-state sorting moves a bounded working set of block-sized
//! buffers between the disks, the merge loop, and the wire. Allocating
//! a fresh `Box<[u8]>` for every block read and every received frame
//! makes the allocator — not the disks — the hot path. A [`BufferPool`]
//! keeps a bounded free list of exact-size buffers that the I/O engine,
//! the block cache, and the TCP transport share: a buffer's life cycle
//! is *disk → decode → pool → wire → pool → disk*, with the pool as the
//! rendezvous point.
//!
//! The pool is deliberately dumb:
//!
//! * [`BufferPool::get`] pops a recycled buffer or allocates a fresh
//!   zeroed one (a *miss*). Recycled buffers keep their previous
//!   contents — every consumer overwrites the whole block.
//! * [`BufferPool::put`] recycles a buffer **iff** it is exactly
//!   [`BufferPool::buf_bytes`] long and the free list is below
//!   capacity; anything else is dropped and counted as *discarded*, so
//!   a foreign-sized buffer can never poison the pool.
//!
//! Counters ([`PoolCounters`]) are cumulative and lock-free; they feed
//! the bench JSON and the trace journals. They are *not* part of the
//! transport-deterministic [`IoCounters`](crate::IoCounters) /
//! [`CommCounters`](crate::CommCounters) surfaces: hit/miss splits
//! depend on thread interleaving (concurrent disk workers race on the
//! free list), so they must never enter the byte-identity pins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cumulative pool statistics (monotone counters, racy snapshots).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// `get` calls served from the free list.
    pub hits: u64,
    /// `get` calls that had to allocate a fresh buffer.
    pub misses: u64,
    /// `put` calls that returned a buffer to the free list.
    pub recycled: u64,
    /// `put` calls dropped (wrong size or pool full).
    pub discarded: u64,
    /// Bytes memcpy'd on paths that could not hand a buffer over
    /// zero-copy (cache insertion, undersized frames, ...).
    pub copied_bytes: u64,
}

impl PoolCounters {
    /// Field-wise sum (for aggregating per-PE pools).
    pub fn merge(&self, other: &PoolCounters) -> PoolCounters {
        PoolCounters {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            recycled: self.recycled + other.recycled,
            discarded: self.discarded + other.discarded,
            copied_bytes: self.copied_bytes + other.copied_bytes,
        }
    }
}

struct PoolInner {
    buf_bytes: usize,
    capacity: usize,
    free: Mutex<Vec<Box<[u8]>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
    copied_bytes: AtomicU64,
}

/// A bounded free list of exact-size block buffers, shared by every
/// layer that moves blocks (cheap to clone: an `Arc` under the hood).
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("buf_bytes", &self.inner.buf_bytes)
            .field("capacity", &self.inner.capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

impl BufferPool {
    /// A pool of up to `capacity` buffers of exactly `buf_bytes` bytes.
    /// Nothing is preallocated; the pool fills as buffers retire.
    pub fn new(buf_bytes: usize, capacity: usize) -> BufferPool {
        assert!(buf_bytes > 0, "pool buffers must be non-empty");
        BufferPool {
            inner: Arc::new(PoolInner {
                buf_bytes,
                capacity: capacity.max(1),
                free: Mutex::new(Vec::new()),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
                copied_bytes: AtomicU64::new(0),
            }),
        }
    }

    /// The fixed buffer size this pool recycles.
    pub fn buf_bytes(&self) -> usize {
        self.inner.buf_bytes
    }

    /// Maximum number of buffers the free list holds.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Pop a recycled buffer, or allocate a fresh zeroed one (a miss).
    /// The returned buffer is always exactly [`buf_bytes`](Self::buf_bytes)
    /// long; a recycled buffer keeps its previous contents.
    pub fn get(&self) -> Box<[u8]> {
        let popped = self.inner.free.lock().expect("pool free list lock").pop();
        match popped {
            Some(buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                vec![0u8; self.inner.buf_bytes].into_boxed_slice()
            }
        }
    }

    /// Pop a recycled buffer as an empty `Vec` with exactly
    /// [`buf_bytes`](Self::buf_bytes) of capacity — for callers that
    /// assemble a block incrementally. `Box<[u8]> → Vec` is free.
    pub fn get_vec(&self) -> Vec<u8> {
        let mut v = self.get().into_vec();
        v.clear();
        v
    }

    /// Return a buffer to the free list. Recycles **iff** the buffer is
    /// exactly [`buf_bytes`](Self::buf_bytes) long and the pool has
    /// room; otherwise the buffer is dropped and counted as discarded.
    pub fn put(&self, buf: Box<[u8]>) {
        if buf.len() != self.inner.buf_bytes {
            self.inner.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut free = self.inner.free.lock().expect("pool free list lock");
        if free.len() < self.inner.capacity {
            free.push(buf);
            drop(free);
            self.inner.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(free);
            self.inner.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Return a `Vec` buffer. Only recycled when `len == capacity ==`
    /// [`buf_bytes`](Self::buf_bytes) — the `Vec → Box<[u8]>`
    /// conversion is free exactly then; anything else is discarded
    /// rather than paying a reallocation to "save" it.
    pub fn put_vec(&self, buf: Vec<u8>) {
        if buf.len() == buf.capacity() && buf.len() == self.inner.buf_bytes {
            self.put(buf.into_boxed_slice());
        } else {
            self.inner.discarded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Meter `bytes` of memcpy traffic on a path that could not move a
    /// buffer zero-copy.
    pub fn add_copied(&self, bytes: u64) {
        self.inner.copied_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Buffers currently parked on the free list.
    pub fn available(&self) -> usize {
        self.inner.free.lock().expect("pool free list lock").len()
    }

    /// Snapshot the cumulative counters.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            discarded: self.inner.discarded.load(Ordering::Relaxed),
            copied_bytes: self.inner.copied_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn miss_then_hit_roundtrip() {
        let pool = BufferPool::new(64, 4);
        let a = pool.get();
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|&b| b == 0), "fresh buffers are zeroed");
        pool.put(a);
        let b = pool.get();
        assert_eq!(b.len(), 64);
        let c = pool.counters();
        assert_eq!((c.hits, c.misses, c.recycled, c.discarded), (1, 1, 1, 0));
    }

    #[test]
    fn wrong_size_and_overflow_are_discarded() {
        let pool = BufferPool::new(32, 2);
        pool.put(vec![0u8; 31].into_boxed_slice()); // wrong size
        pool.put(vec![0u8; 32].into_boxed_slice());
        pool.put(vec![0u8; 32].into_boxed_slice());
        pool.put(vec![0u8; 32].into_boxed_slice()); // pool full
        let c = pool.counters();
        assert_eq!(c.recycled, 2);
        assert_eq!(c.discarded, 2);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn vec_interface_recycles_only_exact_buffers() {
        let pool = BufferPool::new(16, 4);
        let v = pool.get_vec();
        assert_eq!((v.len(), v.capacity()), (0, 16));
        let mut v = v;
        v.resize(16, 7);
        pool.put_vec(v); // len == cap == buf_bytes: recycled
        pool.put_vec(vec![1u8; 8]); // short: discarded
        let mut oversized = Vec::with_capacity(32);
        oversized.resize(16, 0);
        pool.put_vec(oversized); // len != cap: discarded, no realloc
        let c = pool.counters();
        assert_eq!(c.recycled, 1);
        assert_eq!(c.discarded, 2);
    }

    #[test]
    fn recycled_buffers_keep_contents_until_overwritten() {
        let pool = BufferPool::new(8, 1);
        let mut a = pool.get();
        a.copy_from_slice(&[9u8; 8]);
        pool.put(a);
        let b = pool.get();
        assert_eq!(&b[..], &[9u8; 8], "pool does not scrub; consumers overwrite");
    }

    #[test]
    fn copied_bytes_meter_accumulates() {
        let pool = BufferPool::new(8, 1);
        pool.add_copied(100);
        pool.add_copied(28);
        assert_eq!(pool.counters().copied_bytes, 128);
    }

    #[test]
    fn clones_share_one_free_list() {
        let pool = BufferPool::new(8, 4);
        let clone = pool.clone();
        clone.put(vec![0u8; 8].into_boxed_slice());
        assert_eq!(pool.available(), 1);
        let _ = pool.get();
        assert_eq!(pool.counters().hits, 1);
        assert_eq!(clone.counters().hits, 1, "counters are shared too");
    }

    proptest! {
        /// Recycle invariants: buffers handed out concurrently-ish are
        /// never aliased (writing through one never shows through
        /// another), and every buffer keeps the exact pool size.
        #[test]
        fn outstanding_buffers_never_alias(
            buf_bytes in 1usize..128,
            capacity in 1usize..8,
            churn in 0usize..32,
        ) {
            let pool = BufferPool::new(buf_bytes, capacity);
            // Churn the free list so later gets are recycled buffers.
            for _ in 0..churn {
                let b = pool.get();
                pool.put(b);
            }
            let mut a = pool.get();
            let mut b = pool.get();
            prop_assert_eq!(a.len(), buf_bytes);
            prop_assert_eq!(b.len(), buf_bytes);
            a.fill(0xAA);
            b.fill(0x55);
            prop_assert!(a.iter().all(|&x| x == 0xAA), "buffer A aliased by B");
            prop_assert!(b.iter().all(|&x| x == 0x55), "buffer B aliased by A");
            pool.put(a);
            pool.put(b);
        }

        /// Capacity invariants: the free list never exceeds the
        /// configured capacity and counters balance (`recycled =
        /// available + re-issued hits`).
        #[test]
        fn free_list_bounded_by_capacity(
            capacity in 1usize..6,
            puts in 0usize..16,
        ) {
            let pool = BufferPool::new(8, capacity);
            for _ in 0..puts {
                pool.put(vec![0u8; 8].into_boxed_slice());
            }
            prop_assert!(pool.available() <= capacity);
            let c = pool.counters();
            prop_assert_eq!(c.recycled + c.discarded, puts as u64);
            prop_assert_eq!(c.recycled as usize, pool.available());
        }

        /// A buffer that round-trips through the pool preserves its
        /// capacity: `get` after `put` hands back a full-size buffer
        /// regardless of churn order.
        #[test]
        fn roundtrip_preserves_size(buf_bytes in 1usize..256, rounds in 1usize..10) {
            let pool = BufferPool::new(buf_bytes, 2);
            for _ in 0..rounds {
                let v = pool.get_vec();
                prop_assert_eq!(v.capacity(), buf_bytes);
                let mut v = v;
                v.resize(buf_bytes, 1);
                pool.put_vec(v);
            }
            let c = pool.counters();
            prop_assert_eq!(c.misses, 1, "steady state allocates exactly once");
            prop_assert_eq!(c.hits, rounds as u64 - 1);
        }
    }
}
