//! L5 fixture: counter mutation outside the metering allowlist.

pub fn cheat(c: &mut CpuCounters) {
    c.elements_sorted += 10;
}

pub fn reads_are_fine(c: &CpuCounters) -> u64 {
    c.elements_sorted
}
