//! Exact multiway selection (Section IV-A).
//!
//! A *multiway selection* finds, among `R` sorted sequences, the element
//! `e` of global rank `r`, and returns `R` splitter positions that
//! partition the sequences with respect to `e`: exactly `r` elements lie
//! left of the splitters, and every element left of a splitter is ≤
//! every element right of any splitter (under a total order that breaks
//! key ties by sequence index, making the partition unique).
//!
//! Two search strategies share the entry points, picked by how much
//! positional information the caller brings:
//!
//! **Cold starts** ([`multiway_select`], or [`multiway_select_from`]
//! with all-zero positions and a full-width step) run a deterministic
//! pivot search: pick the middle element of the widest undecided
//! splitter range as the pivot, rank it globally with one binary search
//! per sequence (under the total order that breaks key ties by sequence
//! index, then position), and shrink every sequence's range toward the
//! rank-`r` boundary. Every round narrows *all* `R` ranges — `O(R log
//! M)` probes per round, `O(log M)` effective rounds — which is what
//! makes `R > 2` cold selections cheap; greedy single-splitter walks
//! (the refinement below) move only one boundary per round and
//! degenerate to `Θ(n)` one-element repairs from a cold start.
//!
//! **Warm starts** (sample-initialized external selection, Appendix B)
//! refine the paper's way: approximate splitter positions move in
//! halving steps starting from the sample spacing `s = K`:
//!
//! 1. until *more* than `r` elements are left of the splitters, advance
//!    the splitter whose *head* (next element right of it) is smallest;
//! 2. while more than `r` elements are left, retreat the splitter whose
//!    *tail* (last element left of it) is largest;
//! 3. halve `s` and repeat until `s = 1`, then run steps 1–2 once more.
//!
//! The up phase deliberately *overshoots* `r` (the paper: "increased by
//! `s` until the number of elements to the left of the splitters becomes
//! larger than `r`"): each advance-past/retreat-back wiggle at step `s`
//! re-sorts the boundary at granularity `s`, so every halving round
//! refines the partition even when the count already equals `r`.
//! Stopping at `count == r` instead would freeze all remaining rounds
//! whenever a coarse advance lands exactly on the rank (routine when
//! lengths and ranks share a power-of-two factor) and leave the entire
//! split to the one-element-at-a-time repair pass below.
//!
//! After the `s = 1` round the count is exactly `r`; a final exchange
//! pass repairs any residual misordering between left and right sets.
//! Each exchange strictly shrinks the set of cross-pairs, so termination
//! is immediate when the start was within the sample spacing of the
//! answer — the warm start's contract.
//!
//! Probing a sequence is **fallible**: external selection
//! ([`crate::extselect`]) reads blocks that may live on a remote PE's
//! disks, so [`SortedSeq::key_at`] returns `Result` and every selection
//! entry point propagates the first probe failure instead of panicking
//! (in-memory sequences simply never fail).
//!
//! Total work: `O(R · log M)` sequence probes, `O(R log R log M)` time
//! with the priority queues replaced by linear scans over `R` (our `R`
//! is small; the asymptotically better variant is what Appendix B's
//! sampling already buys).

use demsort_types::Result;

/// Result of a multiway selection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SelectionResult {
    /// `positions[i]` = number of elements of sequence `i` lying strictly
    /// left of the partition (the splitter position).
    pub positions: Vec<usize>,
    /// Total probes into the sequences (for the ablation benchmarks).
    pub probes: u64,
}

impl SelectionResult {
    /// Sum of splitter positions (must equal the requested rank).
    pub fn rank(&self) -> u64 {
        self.positions.iter().map(|&p| p as u64).sum()
    }
}

/// Random access into one sorted sequence, abstracting in-memory slices
/// (internal selection) and on-disk runs with caching (external
/// selection, [`crate::extselect`]).
pub trait SortedSeq {
    /// The key type.
    type Key: Ord + Copy;

    /// Sequence length in elements.
    fn len(&self) -> usize;

    /// `true` if the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Key of the element at `idx` (`idx < len`).
    ///
    /// # Errors
    /// External sequences probe (possibly remote) disk blocks; a failed
    /// fetch surfaces here and aborts the selection cleanly. In-memory
    /// sequences are infallible.
    fn key_at(&mut self, idx: usize) -> Result<Self::Key>;
}

impl<K: Ord + Copy> SortedSeq for &[K] {
    type Key = K;

    fn len(&self) -> usize {
        <[K]>::len(self)
    }

    fn key_at(&mut self, idx: usize) -> Result<K> {
        Ok(self[idx])
    }
}

/// A slice paired with a key extractor (for record types).
pub struct KeyedSlice<'a, T, K, F: Fn(&T) -> K> {
    slice: &'a [T],
    keyfn: F,
}

impl<'a, T, K, F: Fn(&T) -> K> KeyedSlice<'a, T, K, F> {
    /// Wrap `slice` with key extractor `keyfn`.
    pub fn new(slice: &'a [T], keyfn: F) -> Self {
        Self { slice, keyfn }
    }
}

impl<T, K: Ord + Copy, F: Fn(&T) -> K> SortedSeq for KeyedSlice<'_, T, K, F> {
    type Key = K;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn key_at(&mut self, idx: usize) -> Result<K> {
        Ok((self.keyfn)(&self.slice[idx]))
    }
}

/// Select the partition of global rank `r` over `seqs`.
///
/// Equal keys across sequences are ordered by sequence index (the
/// paper's conceptual "fill up with ∞" padding plus a deterministic
/// tie-break), so the result is unique and exact.
///
/// # Errors
/// Propagates the first failed [`SortedSeq::key_at`] probe (remote
/// block fetch failures during external selection).
///
/// # Panics
/// Panics if `r` exceeds the total number of elements (a caller bug,
/// not a communication failure).
pub fn multiway_select<S: SortedSeq>(seqs: &mut [S], r: u64) -> Result<SelectionResult> {
    let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
    assert!(r <= total, "rank {r} > total {total}");
    multiway_select_pivot(seqs, r)
}

/// Cold-start selection by deterministic pivoting (see the module doc):
/// each round ranks the middle element of the widest undecided splitter
/// range and clamps every sequence's range toward the boundary.
fn multiway_select_pivot<S: SortedSeq>(seqs: &mut [S], r: u64) -> Result<SelectionResult> {
    let n = seqs.len();
    let full: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
    let total: u64 = full.iter().map(|&l| l as u64).sum();
    if r == 0 {
        return Ok(SelectionResult { positions: vec![0; n], probes: 0 });
    }
    if r == total {
        return Ok(SelectionResult { positions: full, probes: 0 });
    }
    // Invariant: the true splitter of sequence `i` lies in
    // `lo[i]..=hi[i]` (the left set — the `r` smallest under the
    // (key, seq, pos) total order — is unique, so the splitters are
    // too).
    let mut lo = vec![0usize; n];
    let mut hi = full;
    let mut probes = 0u64;
    // Pivot from the widest undecided range: ranking it halves that
    // range, so rounds are logarithmic in the longest sequence.
    while let Some(j) = (0..n).filter(|&i| hi[i] > lo[i]).max_by_key(|&i| hi[i] - lo[i]) {
        let m = lo[j] + (hi[j] - lo[j]) / 2;
        probes += 1;
        let k = seqs[j].key_at(m)?;
        // Global rank of the pivot element (k, j, m): elements of `j`
        // before position `m` (keys < k plus equal keys at earlier
        // positions), plus each other sequence's prefix that precedes
        // (k, j) under the tie-break — found by binary search.
        let mut c = vec![0usize; n];
        c[j] = m;
        let mut rank = m as u64;
        for i in 0..n {
            if i == j {
                continue;
            }
            let (mut a, mut b) = (0usize, seqs[i].len());
            while a < b {
                let mid = a + (b - a) / 2;
                probes += 1;
                let ke = seqs[i].key_at(mid)?;
                if ke < k || (ke == k && i < j) {
                    a = mid + 1;
                } else {
                    b = mid;
                }
            }
            c[i] = a;
            rank += a as u64;
        }
        match rank.cmp(&r) {
            // Exactly r elements precede the pivot: the left set is
            // precisely those elements, so `c` is the exact partition.
            std::cmp::Ordering::Equal => return Ok(SelectionResult { positions: c, probes }),
            std::cmp::Ordering::Less => {
                // The pivot is among the r smallest, hence so is every
                // element before it: splitters sit at or past `c` (past
                // the pivot itself in sequence `j`).
                for i in 0..n {
                    lo[i] = lo[i].max(c[i]);
                }
                lo[j] = lo[j].max(m + 1);
            }
            std::cmp::Ordering::Greater => {
                // The pivot is not among the r smallest, so nothing at
                // or after it is: splitters sit at or before `c`.
                for i in 0..n {
                    hi[i] = hi[i].min(c[i]);
                }
                hi[j] = hi[j].min(m);
            }
        }
    }
    debug_assert_eq!(
        lo.iter().map(|&p| p as u64).sum::<u64>(),
        r,
        "empty ranges must pin the exact rank"
    );
    Ok(SelectionResult { positions: lo, probes })
}

/// Selection with explicit initial positions and step size — the entry
/// point used by sample-initialized external selection (Appendix B):
/// the sample pins each splitter within `K` of its final position, so
/// the search starts at step `K` instead of `2^⌈log2 M⌉`.
///
/// # Errors
/// Propagates the first failed [`SortedSeq::key_at`] probe.
pub fn multiway_select_from<S: SortedSeq>(
    seqs: &mut [S],
    r: u64,
    mut pos: Vec<usize>,
    init_step: usize,
) -> Result<SelectionResult> {
    assert_eq!(pos.len(), seqs.len());
    for (p, s) in pos.iter().zip(seqs.iter()) {
        assert!(*p <= s.len(), "initial position out of range");
    }
    // All-zero positions at full-width step carry no warm-start
    // information (external selection with sampling disabled lands
    // here): route to the pivot search, which stays probe-logarithmic
    // without a warm start.
    let max_len = seqs.iter().map(|s| s.len()).max().unwrap_or(0);
    if init_step >= max_len && pos.iter().all(|&p| p == 0) {
        return multiway_select_pivot(seqs, r);
    }
    let mut probes = 0u64;
    let mut count: u64 = pos.iter().map(|&p| p as u64).sum();
    let mut step = init_step.next_power_of_two().max(1);

    // Memoized boundary keys: heads[i] / tails[i] cache the key right
    // of / left of splitter i (`None` once known to be absent). Only
    // the splitter that moved is re-probed, so the probe count — which
    // external selection pays for in (possibly remote) block fetches —
    // is `O(R + moves)` instead of `O(R · moves)`. This is the linear-
    // scan stand-in for the paper's priority queues, with the queues'
    // probe economy.
    let mut heads: Vec<Option<Option<S::Key>>> = vec![None; seqs.len()];
    let mut tails: Vec<Option<Option<S::Key>>> = vec![None; seqs.len()];

    fn boundary_key<S: SortedSeq>(
        seq: &mut S,
        at: Option<usize>,
        cache: &mut Option<Option<S::Key>>,
        probes: &mut u64,
    ) -> Result<Option<S::Key>> {
        if cache.is_none() {
            *cache = Some(match at {
                Some(idx) => {
                    *probes += 1;
                    Some(seq.key_at(idx)?)
                }
                None => None,
            });
        }
        Ok(cache.expect("cache filled above"))
    }

    loop {
        // Advance the splitter with the smallest head until count > r
        // (paper: "increased by s until the number of elements to the
        // left of the splitters becomes larger than r"). The overshoot
        // is load-bearing: landing exactly on r at a coarse step must
        // not stall the refinement (see the module doc).
        while count <= r {
            let mut best: Option<(S::Key, usize)> = None;
            for (i, s) in seqs.iter_mut().enumerate() {
                let at = (pos[i] < s.len()).then_some(pos[i]);
                if let Some(k) = boundary_key(s, at, &mut heads[i], &mut probes)? {
                    // Strict `<` keeps the lowest sequence index on ties.
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            // Advance by a full step (may overshoot past r; the down
            // phase repairs it at finer granularity, and the s = 1
            // round lands exactly).
            let adv = step.min(seqs[i].len() - pos[i]);
            pos[i] += adv;
            count += adv as u64;
            heads[i] = None;
            tails[i] = None;
        }
        // Retreat the splitter with the largest tail while count > r.
        while count > r {
            let mut best: Option<(S::Key, usize)> = None;
            for (i, s) in seqs.iter_mut().enumerate() {
                let at = (pos[i] > 0).then(|| pos[i] - 1);
                if let Some(k) = boundary_key(s, at, &mut tails[i], &mut probes)? {
                    // `>=` keeps the highest sequence index on ties
                    // (mirror of the up-phase tie-break).
                    if best.is_none_or(|(bk, _)| k >= bk) {
                        best = Some((k, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            // Retreat a full step (at step 1 this lands exactly on r,
            // since each retreat moves the count by one).
            let ret = step.min(pos[i]);
            pos[i] -= ret;
            count -= ret as u64;
            heads[i] = None;
            tails[i] = None;
        }
        if step == 1 {
            break;
        }
        step /= 2;
    }
    debug_assert_eq!(count, r, "halving rounds must land on the exact rank");

    // Exactness repair: if a coarse round landed on count == r with a
    // misordered partition (largest-left > smallest-right under the
    // (key, seq) total order), exchange one element at a time.
    loop {
        let mut max_left: Option<(S::Key, usize)> = None;
        let mut min_right: Option<(S::Key, usize)> = None;
        for (i, s) in seqs.iter_mut().enumerate() {
            let tail_at = (pos[i] > 0).then(|| pos[i] - 1);
            if let Some(k) = boundary_key(s, tail_at, &mut tails[i], &mut probes)? {
                if max_left.is_none_or(|(bk, bi)| (k, i) > (bk, bi)) {
                    max_left = Some((k, i));
                }
            }
            let head_at = (pos[i] < s.len()).then_some(pos[i]);
            if let Some(k) = boundary_key(s, head_at, &mut heads[i], &mut probes)? {
                if min_right.is_none_or(|(bk, bi)| (k, i) < (bk, bi)) {
                    min_right = Some((k, i));
                }
            }
        }
        match (max_left, min_right) {
            (Some((lk, li)), Some((rk, ri))) if (lk, li) > (rk, ri) => {
                pos[li] -= 1;
                pos[ri] += 1;
                heads[li] = None;
                tails[li] = None;
                heads[ri] = None;
                tails[ri] = None;
            }
            _ => break,
        }
    }

    Ok(SelectionResult { positions: pos, probes })
}

/// Split `seqs` into `parts` pieces of (near-)equal global size:
/// `parts + 1` position vectors, where piece `p` of sequence `i` is
/// `result[p][i]..result[p+1][i]`. Used by the in-node parallel merge
/// and the distributed internal sort.
///
/// # Errors
/// Propagates the first failed [`SortedSeq::key_at`] probe.
pub fn multiway_split<S: SortedSeq>(seqs: &mut [S], parts: usize) -> Result<Vec<Vec<usize>>> {
    multiway_split_counted(seqs, parts).map(|(cuts, _)| cuts)
}

/// [`multiway_split`] that also reports the selection probes spent on
/// the splitters — the price of parallelizing a merge, accounted in
/// [`CpuCounters::split_probes`](demsort_types::CpuCounters) so the
/// merge-comparison bound stays thread-count-independent.
///
/// # Errors
/// Propagates the first failed [`SortedSeq::key_at`] probe.
pub fn multiway_split_counted<S: SortedSeq>(
    seqs: &mut [S],
    parts: usize,
) -> Result<(Vec<Vec<usize>>, u64)> {
    assert!(parts > 0);
    let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
    let mut probes = 0u64;
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(vec![0; seqs.len()]);
    for p in 1..parts {
        let r = (p as u128 * total as u128 / parts as u128) as u64;
        let sel = multiway_select(seqs, r)?;
        probes += sel.probes;
        cuts.push(sel.positions);
    }
    cuts.push(seqs.iter().map(|s| s.len()).collect());
    Ok((cuts, probes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference check: positions sum to `r` and the partition respects
    /// the (key, seq) total order.
    fn assert_exact(seqs: &[Vec<u64>], r: u64, res: &SelectionResult) {
        assert_eq!(res.rank(), r, "positions must sum to the rank");
        let max_left = seqs
            .iter()
            .enumerate()
            .filter(|(i, _)| res.positions[*i] > 0)
            .map(|(i, s)| (s[res.positions[i] - 1], i))
            .max();
        let min_right = seqs
            .iter()
            .enumerate()
            .filter(|(i, s)| res.positions[*i] < s.len())
            .map(|(i, s)| (s[res.positions[i]], i))
            .min();
        if let (Some(l), Some(rr)) = (max_left, min_right) {
            // Equal (key, seq) pairs can only come from equal keys at
            // adjacent positions of the same sequence — a valid split.
            assert!(l <= rr, "partition misordered: left {l:?} right {rr:?}");
        }
    }

    fn select_and_check(seqs: &[Vec<u64>], r: u64) -> SelectionResult {
        let mut views: Vec<&[u64]> = seqs.iter().map(|s| s.as_slice()).collect();
        let res = multiway_select(&mut views, r).expect("in-memory selection");
        assert_exact(seqs, r, &res);
        res
    }

    #[test]
    fn selects_simple_median() {
        let seqs = vec![vec![1, 3, 5], vec![2, 4, 6]];
        let res = select_and_check(&seqs, 3);
        assert_eq!(res.positions, vec![2, 1]); // {1,3} ∪ {2}
    }

    #[test]
    fn rank_zero_and_full() {
        let seqs = vec![vec![5, 6], vec![1, 2, 3]];
        assert_eq!(select_and_check(&seqs, 0).positions, vec![0, 0]);
        assert_eq!(select_and_check(&seqs, 5).positions, vec![2, 3]);
    }

    #[test]
    fn empty_sequences_are_fine() {
        let seqs = vec![vec![], vec![1, 2], vec![]];
        let res = select_and_check(&seqs, 1);
        assert_eq!(res.positions, vec![0, 1, 0]);
    }

    #[test]
    fn all_sequences_empty() {
        let seqs: Vec<Vec<u64>> = vec![vec![], vec![]];
        assert_eq!(select_and_check(&seqs, 0).positions, vec![0, 0]);
    }

    #[test]
    fn duplicate_keys_split_deterministically() {
        // 12 equal keys over 3 sequences; rank 5 must take all of the
        // earliest sequences first (tie-break by sequence index).
        let seqs = vec![vec![7u64; 4], vec![7; 4], vec![7; 4]];
        let res = select_and_check(&seqs, 5);
        assert_eq!(res.positions, vec![4, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn rank_beyond_total_panics() {
        let seqs: Vec<Vec<u64>> = vec![vec![1, 2]];
        select_and_check(&seqs, 3);
    }

    #[test]
    fn probe_failures_abort_the_selection() {
        /// A sequence whose probes fail past a cutoff index.
        struct Flaky {
            len: usize,
            fail_from: usize,
        }
        impl SortedSeq for Flaky {
            type Key = u64;
            fn len(&self) -> usize {
                self.len
            }
            fn key_at(&mut self, idx: usize) -> Result<u64> {
                if idx >= self.fail_from {
                    return Err(demsort_types::Error::comm(format!("probe of {idx} failed")));
                }
                Ok(idx as u64)
            }
        }
        let mut seqs = vec![Flaky { len: 100, fail_from: 10 }];
        let err = multiway_select(&mut seqs, 50).expect_err("failed probes must surface");
        assert!(matches!(err, demsort_types::Error::Comm(_)), "{err}");
        // Probes below the cutoff succeed.
        let mut seqs = vec![Flaky { len: 100, fail_from: 101 }];
        assert_eq!(multiway_select(&mut seqs, 50).expect("fine").positions, vec![50]);
    }

    #[test]
    fn wildly_different_lengths() {
        let seqs = vec![
            (0..1000u64).map(|i| 2 * i).collect::<Vec<_>>(),
            vec![1],
            (0..10u64).map(|i| 200 * i).collect(),
        ];
        for r in [0u64, 1, 10, 500, 1011] {
            select_and_check(&seqs, r);
        }
    }

    #[test]
    fn sample_initialized_selection_matches() {
        // Start from sample-derived positions (multiples of K below the
        // target) and a small step — must converge to the same result.
        let seqs: Vec<Vec<u64>> =
            (0..4).map(|i| (0..256u64).map(|j| j * 4 + i).collect()).collect();
        let r = 300;
        let reference = select_and_check(&seqs, r);
        let k = 16usize;
        // Sample-derived warm start: true position rounded down to K.
        let init: Vec<usize> = reference.positions.iter().map(|&p| p - p % k).collect();
        let mut views: Vec<&[u64]> = seqs.iter().map(|s| s.as_slice()).collect();
        let warm = multiway_select_from(&mut views, r, init, k).expect("warm selection");
        assert_eq!(warm.positions, reference.positions);
        assert!(
            warm.probes < reference.probes,
            "warm start {} must probe less than cold {}",
            warm.probes,
            reference.probes
        );
    }

    #[test]
    fn split_covers_and_balances() {
        let seqs: Vec<Vec<u64>> = (0..5).map(|i| (0..100).map(|j| j * 5 + i).collect()).collect();
        let mut views: Vec<&[u64]> = seqs.iter().map(|s| s.as_slice()).collect();
        let cuts = multiway_split(&mut views, 4).expect("split");
        assert_eq!(cuts.len(), 5);
        assert_eq!(cuts[0], vec![0; 5]);
        assert_eq!(cuts[4], vec![100; 5]);
        for w in cuts.windows(2) {
            let size: u64 = w[1].iter().zip(&w[0]).map(|(b, a)| (b - a) as u64).sum();
            assert_eq!(size, 125, "equal parts");
            for (a, b) in w[0].iter().zip(&w[1]) {
                assert!(a <= b, "cuts monotone per sequence");
            }
        }
    }

    proptest! {
        #[test]
        fn selection_is_exact_on_arbitrary_inputs(
            raw in prop::collection::vec(prop::collection::vec(0u64..64, 0..80), 1..10),
            frac in 0.0f64..=1.0,
        ) {
            let seqs: Vec<Vec<u64>> = raw.into_iter().map(|mut s| { s.sort_unstable(); s }).collect();
            let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
            let r = (total as f64 * frac) as u64;
            select_and_check(&seqs, r.min(total));
        }

        #[test]
        fn selection_left_set_is_the_r_smallest(
            raw in prop::collection::vec(prop::collection::vec(0u64..32, 0..40), 1..6),
            frac in 0.0f64..=1.0,
        ) {
            let seqs: Vec<Vec<u64>> = raw.into_iter().map(|mut s| { s.sort_unstable(); s }).collect();
            let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
            let r = ((total as f64 * frac) as u64).min(total);
            let res = select_and_check(&seqs, r);
            // The multiset of left elements equals the r smallest of the
            // union (with (key, seq) tie-break this is unique).
            let mut left: Vec<u64> = seqs
                .iter()
                .enumerate()
                .flat_map(|(i, s)| s[..res.positions[i]].iter().copied())
                .collect();
            left.sort_unstable();
            let mut all: Vec<u64> = seqs.concat();
            all.sort_unstable();
            prop_assert_eq!(left.as_slice(), &all[..r as usize]);
        }
    }
}
