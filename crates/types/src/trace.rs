//! Structured cluster tracing: per-rank JSONL event journals.
//!
//! Every layer of the suite — collectives in `demsort-net`, the block
//! service and phase recorder in `demsort-core`, the striped merge
//! loop, the TCP failure detector — reports what it does through a
//! [`Tracer`] handle. A tracer is either *off* (the default: every
//! call is a branch on a `None` and nothing else) or appends typed
//! records to a per-rank journal file, one JSON object per line:
//!
//! ```json
//! {"rank":2,"ts":10500,"op":"begin","span":1,"ev":"phase","phase":"run_formation"}
//! {"rank":2,"ts":11000,"op":"event","ev":"merge_issued","pass":0,"group":0,"batch":1,"batches":6}
//! {"rank":2,"ts":12000,"op":"end","span":1,"ev":"phase","phase":"run_formation"}
//! ```
//!
//! `ts` is monotonic nanoseconds since the rank's tracer was created
//! (stamped under the journal lock, so a journal's lines are sorted by
//! `ts`); `span` pairs a `begin` with its `end`. In-process and TCP
//! runs emit the same schema. `demsort-trace` merges the per-rank
//! journals into one chronological cluster timeline and a Chrome
//! trace-format export (`chrome://tracing` / Perfetto), and the
//! invariant checks in [`validate_rank_journal`] are what the test
//! suite pins merge pipelining and recovery against.
//!
//! Journal I/O deliberately bypasses the metered storage and transport
//! paths: enabling tracing must not change a job's reported I/O or
//! communication volumes.

use crate::counters::Phase;
use crate::error::{Error, Result};
use crate::json::{parse_jsonl, Json};
use std::borrow::Cow;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a trace record describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEv {
    /// An algorithm phase (span).
    Phase {
        /// Which phase.
        phase: Phase,
    },
    /// A collective operation on the communicator (span).
    Collective {
        /// Collective name (`"barrier"`, `"alltoallv"`, ...).
        name: Cow<'static, str>,
    },
    /// Block fetches issued through the cluster block service (event).
    Fetch {
        /// Rank that owns the blocks.
        owner: usize,
        /// How many blocks were requested.
        blocks: usize,
        /// Whether the request left this process (wire fetch).
        remote: bool,
    },
    /// Block stores issued through the cluster block service (event).
    Store {
        /// Rank that will own the stored blocks.
        owner: usize,
        /// How many blocks were shipped.
        blocks: usize,
        /// Whether the request left this process (wire store).
        remote: bool,
    },
    /// A merge batch's fetches were issued (event).
    MergeIssued {
        /// Merge pass.
        pass: usize,
        /// Run group within the pass.
        group: usize,
        /// Batch index within the group.
        batch: usize,
        /// Total batches in the group.
        batches: usize,
    },
    /// A merge batch's records were merged and emitted (event).
    MergeEmitted {
        /// Merge pass.
        pass: usize,
        /// Run group within the pass.
        group: usize,
        /// Batch index within the group.
        batch: usize,
        /// Total batches in the group.
        batches: usize,
    },
    /// One thread's output range of the in-node parallel batch merge
    /// (span; each merge batch emits one per merge thread).
    MergePar {
        /// Merge pass.
        pass: usize,
        /// Run group within the pass.
        group: usize,
        /// Batch index within the group.
        batch: usize,
        /// Merge thread index within the batch (0-based).
        thread: usize,
        /// Number of merge threads the batch ran on.
        threads: usize,
        /// Records this thread merged (its output range length).
        len: usize,
        /// Records the whole batch emitted (Σ `len` over its threads).
        total: usize,
    },
    /// Cumulative buffer-pool counters at a checkpoint, typically the
    /// end of a phase or the whole sort (event). Hit/miss splits are
    /// timing-dependent, so this is diagnostics — never a pinned
    /// identity surface.
    PoolStats {
        /// Pool gets served from the free list.
        hits: u64,
        /// Pool gets that allocated fresh.
        misses: u64,
        /// Buffers returned to the free list.
        recycled: u64,
        /// Returned buffers dropped (wrong size or pool full).
        discarded: u64,
        /// Bytes memcpy'd on non-zero-copy paths.
        copied_bytes: u64,
    },
    /// The failure detector declared a peer dead (event).
    PeerDead {
        /// The dead peer's rank.
        peer: usize,
    },
    /// The transport entered a new recovery epoch (event).
    EpochAdvance {
        /// The new epoch number.
        epoch: u64,
    },
}

impl TraceEv {
    /// Stable schema tag for the `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEv::Phase { .. } => "phase",
            TraceEv::Collective { .. } => "collective",
            TraceEv::Fetch { .. } => "fetch",
            TraceEv::Store { .. } => "store",
            TraceEv::MergeIssued { .. } => "merge_issued",
            TraceEv::MergeEmitted { .. } => "merge_emitted",
            TraceEv::MergePar { .. } => "merge_par",
            TraceEv::PoolStats { .. } => "pool",
            TraceEv::PeerDead { .. } => "peer_dead",
            TraceEv::EpochAdvance { .. } => "epoch_advance",
        }
    }

    /// Compact human-readable label (timeline and Chrome-trace names).
    pub fn label(&self) -> String {
        match self {
            TraceEv::Phase { phase } => format!("phase:{}", phase.key()),
            TraceEv::Collective { name } => format!("collective:{name}"),
            TraceEv::Fetch { owner, blocks, remote } => {
                format!("fetch owner={owner} blocks={blocks} {}", locality(*remote))
            }
            TraceEv::Store { owner, blocks, remote } => {
                format!("store owner={owner} blocks={blocks} {}", locality(*remote))
            }
            TraceEv::MergeIssued { pass, group, batch, batches } => {
                format!("issued pass={pass} group={group} batch={batch}/{batches}")
            }
            TraceEv::MergeEmitted { pass, group, batch, batches } => {
                format!("emitted pass={pass} group={group} batch={batch}/{batches}")
            }
            TraceEv::MergePar { pass, group, batch, thread, threads, len, .. } => {
                format!("merge pass={pass} group={group} batch={batch} thread={thread}/{threads} len={len}")
            }
            TraceEv::PoolStats { hits, misses, recycled, discarded, copied_bytes } => {
                format!(
                    "pool hits={hits} misses={misses} recycled={recycled} \
                     discarded={discarded} copied={copied_bytes}B"
                )
            }
            TraceEv::PeerDead { peer } => format!("peer {peer} declared dead"),
            TraceEv::EpochAdvance { epoch } => format!("epoch -> {epoch}"),
        }
    }

    fn fields(&self, out: &mut Vec<(String, Json)>) {
        let u = |x: usize| Json::Uint(x as u64);
        match self {
            TraceEv::Phase { phase } => out.push(("phase".into(), Json::str(phase.key()))),
            TraceEv::Collective { name } => out.push(("name".into(), Json::str(name.as_ref()))),
            TraceEv::Fetch { owner, blocks, remote } | TraceEv::Store { owner, blocks, remote } => {
                out.push(("owner".into(), u(*owner)));
                out.push(("blocks".into(), u(*blocks)));
                out.push(("remote".into(), Json::Bool(*remote)));
            }
            TraceEv::MergeIssued { pass, group, batch, batches }
            | TraceEv::MergeEmitted { pass, group, batch, batches } => {
                out.push(("pass".into(), u(*pass)));
                out.push(("group".into(), u(*group)));
                out.push(("batch".into(), u(*batch)));
                out.push(("batches".into(), u(*batches)));
            }
            TraceEv::MergePar { pass, group, batch, thread, threads, len, total } => {
                out.push(("pass".into(), u(*pass)));
                out.push(("group".into(), u(*group)));
                out.push(("batch".into(), u(*batch)));
                out.push(("thread".into(), u(*thread)));
                out.push(("threads".into(), u(*threads)));
                out.push(("len".into(), u(*len)));
                out.push(("total".into(), u(*total)));
            }
            TraceEv::PoolStats { hits, misses, recycled, discarded, copied_bytes } => {
                out.push(("hits".into(), Json::Uint(*hits)));
                out.push(("misses".into(), Json::Uint(*misses)));
                out.push(("recycled".into(), Json::Uint(*recycled)));
                out.push(("discarded".into(), Json::Uint(*discarded)));
                out.push(("copied_bytes".into(), Json::Uint(*copied_bytes)));
            }
            TraceEv::PeerDead { peer } => out.push(("peer".into(), u(*peer))),
            TraceEv::EpochAdvance { epoch } => out.push(("epoch".into(), Json::Uint(*epoch))),
        }
    }

    fn from_json(kind: &str, v: &Json) -> Result<TraceEv> {
        let bad = |what: &str| Error::validation(format!("trace record {kind:?}: bad {what}"));
        let num = |key: &str| v.get(key).and_then(Json::as_u64).ok_or_else(|| bad(key));
        let us = |key: &str| num(key).map(|x| x as usize);
        Ok(match kind {
            "phase" => {
                let key = v.get("phase").and_then(Json::as_str).ok_or_else(|| bad("phase"))?;
                let phase = Phase::from_key(key)
                    .ok_or_else(|| Error::validation(format!("unknown phase key {key:?}")))?;
                TraceEv::Phase { phase }
            }
            "collective" => {
                let name = v.get("name").and_then(Json::as_str).ok_or_else(|| bad("name"))?;
                TraceEv::Collective { name: Cow::Owned(name.to_string()) }
            }
            "fetch" | "store" => {
                let owner = us("owner")?;
                let blocks = us("blocks")?;
                let remote =
                    v.get("remote").and_then(Json::as_bool).ok_or_else(|| bad("remote"))?;
                if kind == "fetch" {
                    TraceEv::Fetch { owner, blocks, remote }
                } else {
                    TraceEv::Store { owner, blocks, remote }
                }
            }
            "merge_issued" | "merge_emitted" => {
                let (pass, group) = (us("pass")?, us("group")?);
                let (batch, batches) = (us("batch")?, us("batches")?);
                if kind == "merge_issued" {
                    TraceEv::MergeIssued { pass, group, batch, batches }
                } else {
                    TraceEv::MergeEmitted { pass, group, batch, batches }
                }
            }
            "merge_par" => TraceEv::MergePar {
                pass: us("pass")?,
                group: us("group")?,
                batch: us("batch")?,
                thread: us("thread")?,
                threads: us("threads")?,
                len: us("len")?,
                total: us("total")?,
            },
            "pool" => TraceEv::PoolStats {
                hits: num("hits")?,
                misses: num("misses")?,
                recycled: num("recycled")?,
                discarded: num("discarded")?,
                copied_bytes: num("copied_bytes")?,
            },
            "peer_dead" => TraceEv::PeerDead { peer: us("peer")? },
            "epoch_advance" => TraceEv::EpochAdvance { epoch: num("epoch")? },
            other => return Err(Error::validation(format!("unknown trace event kind {other:?}"))),
        })
    }
}

fn locality(remote: bool) -> &'static str {
    if remote {
        "remote"
    } else {
        "local"
    }
}

/// Whether a record opens a span, closes one, or stands alone.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// Span open; the id pairs it with its `End`.
    Begin(u64),
    /// Span close.
    End(u64),
    /// Instantaneous event.
    Instant,
}

/// One journal line: who, when, what.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Emitting rank.
    pub rank: usize,
    /// Monotonic nanoseconds since the rank's tracer was created.
    pub ts_ns: u64,
    /// Span open/close or instantaneous event.
    pub op: TraceOp,
    /// The event payload.
    pub ev: TraceEv,
}

impl TraceRecord {
    /// Serialize to one JSON object (a journal line, sans newline).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("rank".into(), Json::Uint(self.rank as u64)),
            ("ts".into(), Json::Uint(self.ts_ns)),
        ];
        match self.op {
            TraceOp::Begin(id) => {
                fields.push(("op".into(), Json::str("begin")));
                fields.push(("span".into(), Json::Uint(id)));
            }
            TraceOp::End(id) => {
                fields.push(("op".into(), Json::str("end")));
                fields.push(("span".into(), Json::Uint(id)));
            }
            TraceOp::Instant => fields.push(("op".into(), Json::str("event"))),
        }
        fields.push(("ev".into(), Json::str(self.ev.kind())));
        self.ev.fields(&mut fields);
        Json::Obj(fields)
    }

    /// Parse one journal line's object.
    ///
    /// # Errors
    /// [`Error::Validation`] if a required field is missing or malformed.
    pub fn from_json(v: &Json) -> Result<TraceRecord> {
        let bad = |what: &str| Error::validation(format!("trace record: bad or missing {what}"));
        let rank = v.get("rank").and_then(Json::as_u64).ok_or_else(|| bad("rank"))? as usize;
        let ts_ns = v.get("ts").and_then(Json::as_u64).ok_or_else(|| bad("ts"))?;
        let op_tag = v.get("op").and_then(Json::as_str).ok_or_else(|| bad("op"))?;
        let span = || v.get("span").and_then(Json::as_u64).ok_or_else(|| bad("span"));
        let op = match op_tag {
            "begin" => TraceOp::Begin(span()?),
            "end" => TraceOp::End(span()?),
            "event" => TraceOp::Instant,
            other => return Err(Error::validation(format!("unknown trace op {other:?}"))),
        };
        let kind = v.get("ev").and_then(Json::as_str).ok_or_else(|| bad("ev"))?;
        let ev = TraceEv::from_json(kind, v)?;
        Ok(TraceRecord { rank, ts_ns, op, ev })
    }
}

/// Coarse progress of a running rank, streamed to the launcher so a
/// multi-process run shows live per-rank status.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProgressFrame {
    /// Reporting rank.
    pub rank: usize,
    /// Phase the rank is currently in.
    pub phase: Phase,
    /// Completed merge batches in the current group (0 outside merge).
    pub batch: u64,
    /// Total merge batches in the current group (0 outside merge).
    pub batches: u64,
    /// Bytes moved through the block service so far.
    pub bytes: u64,
}

type ProgressFn = dyn Fn(&ProgressFrame) + Send + Sync;

enum Sink {
    File(std::io::BufWriter<std::fs::File>),
    Buffer(Vec<TraceRecord>),
}

struct TracerInner {
    rank: usize,
    epoch: Instant,
    span_seq: AtomicU64,
    bytes_moved: AtomicU64,
    sink: Mutex<Sink>,
    progress: Option<Box<ProgressFn>>,
}

/// A rank's handle on its trace journal.
///
/// Cheap to clone (an `Arc` under the hood) and safe to share across a
/// rank's threads; the default handle is *off* and every operation on
/// it is a no-op. Timestamps are stamped under the journal lock, so a
/// journal's lines are totally ordered by `ts` even when multiple
/// threads (e.g. the transport's reader threads) trace concurrently.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// The disabled tracer: all methods are no-ops.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// Trace `rank` into a journal file at `path` (truncates).
    ///
    /// # Errors
    /// [`Error::Io`] if the file cannot be created.
    pub fn to_path(rank: usize, path: &std::path::Path) -> Result<Tracer> {
        let file = std::fs::File::create(path).map_err(|e| {
            Error::io(format!("cannot create trace journal {}: {e}", path.display()))
        })?;
        Ok(Tracer::with_sink(rank, Sink::File(std::io::BufWriter::new(file))))
    }

    /// Trace `rank` into an in-memory buffer (tests); collect with
    /// [`Tracer::drain`].
    pub fn to_buffer(rank: usize) -> Tracer {
        Tracer::with_sink(rank, Sink::Buffer(Vec::new()))
    }

    fn with_sink(rank: usize, sink: Sink) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                rank,
                epoch: Instant::now(),
                span_seq: AtomicU64::new(0),
                bytes_moved: AtomicU64::new(0),
                sink: Mutex::new(sink),
                progress: None,
            })),
        }
    }

    /// Attach a progress callback, fired by [`Tracer::progress`] with
    /// each coarse status update. Must be called on a freshly
    /// constructed, unshared tracer (before any clone).
    pub fn with_progress(self, cb: Box<ProgressFn>) -> Tracer {
        let arc = self.inner.expect("with_progress needs an enabled tracer");
        let mut inner =
            Arc::try_unwrap(arc).ok().expect("set the progress callback before cloning");
        inner.progress = Some(cb);
        Tracer { inner: Some(Arc::new(inner)) }
    }

    /// Whether this tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(&self, op: TraceOp, ev: TraceEv) {
        let Some(inner) = &self.inner else { return };
        let mut sink = inner.sink.lock().expect("trace sink lock");
        // Stamp inside the lock: journal order == timestamp order.
        let ts_ns = inner.epoch.elapsed().as_nanos() as u64;
        let rec = TraceRecord { rank: inner.rank, ts_ns, op, ev };
        match &mut *sink {
            Sink::File(w) => {
                let mut line = String::with_capacity(128);
                rec.to_json().write_into(&mut line);
                line.push('\n');
                // A full disk must not fail the sort; the journal just
                // ends early (demsort-trace reports unclosed spans).
                let _ = w.write_all(line.as_bytes());
            }
            Sink::Buffer(v) => v.push(rec),
        }
    }

    /// Open a span; returns the id to pass to [`Tracer::end`] (0 when
    /// disabled).
    pub fn begin(&self, ev: TraceEv) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let id = inner.span_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.emit(TraceOp::Begin(id), ev);
        id
    }

    /// Close the span `id` opened by [`Tracer::begin`].
    pub fn end(&self, id: u64, ev: TraceEv) {
        if id == 0 {
            return;
        }
        self.emit(TraceOp::End(id), ev);
    }

    /// Record an instantaneous event. [`TraceEv::Fetch`]/[`TraceEv::Store`]
    /// events also feed the byte meter reported in progress frames
    /// (`blocks * block_bytes` supplied by the caller via
    /// [`Tracer::add_bytes`]).
    pub fn instant(&self, ev: TraceEv) {
        self.emit(TraceOp::Instant, ev);
    }

    /// Add to the bytes-moved meter included in progress frames.
    pub fn add_bytes(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            inner.bytes_moved.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Fire the progress callback (if any) with the current phase and
    /// batch position; bytes moved comes from the tracer's meter.
    pub fn progress(&self, phase: Phase, batch: u64, batches: u64) {
        let Some(inner) = &self.inner else { return };
        if let Some(cb) = &inner.progress {
            cb(&ProgressFrame {
                rank: inner.rank,
                phase,
                batch,
                batches,
                bytes: inner.bytes_moved.load(Ordering::Relaxed),
            });
        }
    }

    /// Flush buffered journal lines to the file (no-op for buffers).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            if let Sink::File(w) = &mut *inner.sink.lock().expect("trace sink lock") {
                // verify: allow(L2, tracing is best-effort — a journal flush error must never fail the sort)
                let _ = w.flush();
            }
        }
    }

    /// Take the records accumulated by a [`Tracer::to_buffer`] tracer.
    pub fn drain(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => match &mut *inner.sink.lock().expect("trace sink lock") {
                Sink::Buffer(v) => std::mem::take(v),
                Sink::File(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }
}

/// Parse a journal file's text into records (empty lines skipped).
///
/// # Errors
/// [`Error::Validation`] naming the first malformed line or field.
pub fn read_journal(text: &str) -> Result<Vec<TraceRecord>> {
    parse_jsonl(text)?.iter().map(TraceRecord::from_json).collect()
}

/// Check one rank's journal invariants: a single emitting rank,
/// monotone timestamps, every span closed exactly once by an `end` of
/// the same event kind, phase spans opening in algorithm order
/// ([`Phase::ALL`], possibly skipping phases), and parallel-merge
/// spans forming, per merge batch, a complete set of thread ranges
/// (`thread` = 0..`threads`, each opened once) whose lengths sum to
/// the batch's emitted `total`.
///
/// # Errors
/// [`Error::Validation`] describing the first violated invariant.
pub fn validate_rank_journal(records: &[TraceRecord]) -> Result<()> {
    let mut open: Vec<(u64, &'static str)> = Vec::new();
    let mut closed: Vec<u64> = Vec::new();
    let mut last_ts = 0u64;
    let mut last_phase: Option<usize> = None;
    // (pass, group, batch) -> accumulating thread-range set. A key can
    // recur (a degraded re-merge restarts pass numbering), so each set
    // is checked and cleared the moment it completes.
    // Each entry records one opened thread range: (thread, threads, len, total).
    #[allow(clippy::type_complexity)]
    let mut par: std::collections::BTreeMap<
        (usize, usize, usize),
        Vec<(usize, usize, usize, usize)>,
    > = std::collections::BTreeMap::new();
    let rank = records.first().map(|r| r.rank);
    for (i, r) in records.iter().enumerate() {
        let at = |msg: String| Error::validation(format!("record {i}: {msg}"));
        if let TraceEv::MergePar { pass, group, batch, thread, threads, len, total } = &r.ev {
            if matches!(r.op, TraceOp::Begin(_)) {
                let set = par.entry((*pass, *group, *batch)).or_default();
                if set.iter().any(|(t, _, _, _)| t == thread) {
                    return Err(at(format!(
                        "merge_par batch ({pass},{group},{batch}) opened thread {thread} twice"
                    )));
                }
                if set.iter().any(|&(_, th, _, to)| th != *threads || to != *total) {
                    return Err(at(format!(
                        "merge_par batch ({pass},{group},{batch}) disagrees on threads/total"
                    )));
                }
                if *thread >= *threads {
                    return Err(at(format!(
                        "merge_par thread {thread} out of range for {threads} threads"
                    )));
                }
                set.push((*thread, *threads, *len, *total));
                if set.len() == *threads {
                    let sum: usize = set.iter().map(|&(_, _, l, _)| l).sum();
                    if sum != *total {
                        return Err(at(format!(
                            "merge_par batch ({pass},{group},{batch}) thread ranges sum to \
                             {sum}, batch emitted {total}"
                        )));
                    }
                    par.remove(&(*pass, *group, *batch));
                }
            }
        }
        if Some(r.rank) != rank {
            return Err(at(format!("rank {} in a journal for rank {:?}", r.rank, rank)));
        }
        if r.ts_ns < last_ts {
            return Err(at(format!("timestamp {} goes back past {last_ts}", r.ts_ns)));
        }
        last_ts = r.ts_ns;
        match r.op {
            TraceOp::Begin(id) => {
                if open.iter().any(|(o, _)| *o == id) || closed.contains(&id) {
                    return Err(at(format!("span {id} opened twice")));
                }
                open.push((id, r.ev.kind()));
                if let TraceEv::Phase { phase } = &r.ev {
                    let idx = phase.index();
                    if let Some(prev) = last_phase {
                        if idx <= prev {
                            return Err(at(format!(
                                "phase {} opened after {}",
                                phase.key(),
                                Phase::ALL[prev].key()
                            )));
                        }
                    }
                    last_phase = Some(idx);
                }
            }
            TraceOp::End(id) => {
                let Some(pos) = open.iter().position(|(o, _)| *o == id) else {
                    return Err(at(format!("span {id} closed without a matching begin")));
                };
                let (_, kind) = open.remove(pos);
                if kind != r.ev.kind() {
                    return Err(at(format!(
                        "span {id} opened as {kind} but closed as {}",
                        r.ev.kind()
                    )));
                }
                closed.push(id);
            }
            TraceOp::Instant => {}
        }
    }
    if let Some((id, kind)) = open.first() {
        return Err(Error::validation(format!("span {id} ({kind}) never closed")));
    }
    if let Some(((pass, group, batch), set)) = par.iter().next() {
        return Err(Error::validation(format!(
            "merge_par batch ({pass},{group},{batch}) opened only {} of its thread ranges",
            set.len()
        )));
    }
    Ok(())
}

/// Merge per-rank journals into one cluster timeline, ordered by
/// timestamp (ties broken by rank). Per-rank clocks start at each
/// rank's tracer creation, so cross-rank order is accurate to the
/// rendezvous skew — exact within a rank, approximate across ranks.
pub fn merge_journals(per_rank: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let mut all: Vec<TraceRecord> = per_rank.into_iter().flatten().collect();
    all.sort_by_key(|r| (r.ts_ns, r.rank));
    all
}

/// Render records as a Chrome trace-format JSON array (load in
/// `chrome://tracing` or Perfetto): spans become `B`/`E` duration
/// events, instants become `i`, with one "process" per rank.
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let events: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut fields: Vec<(String, Json)> = vec![
                ("name".into(), Json::str(chrome_name(&r.ev))),
                ("cat".into(), Json::str(r.ev.kind())),
                ("ts".into(), Json::Num(r.ts_ns as f64 / 1000.0)),
                ("pid".into(), Json::Uint(r.rank as u64)),
                ("tid".into(), Json::Uint(0)),
            ];
            match r.op {
                TraceOp::Begin(_) => fields.push(("ph".into(), Json::str("B"))),
                TraceOp::End(_) => fields.push(("ph".into(), Json::str("E"))),
                TraceOp::Instant => {
                    fields.push(("ph".into(), Json::str("i")));
                    fields.push(("s".into(), Json::str("t")));
                }
            }
            let mut args = Vec::new();
            r.ev.fields(&mut args);
            fields.push(("args".into(), Json::Obj(args)));
            Json::Obj(fields)
        })
        .collect();
    Json::Arr(events).to_string()
}

fn chrome_name(ev: &TraceEv) -> String {
    match ev {
        TraceEv::Phase { phase } => phase.key().to_string(),
        TraceEv::Collective { name } => name.to_string(),
        other => other.kind().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_evs() -> Vec<TraceEv> {
        vec![
            TraceEv::Phase { phase: Phase::RunFormation },
            TraceEv::Collective { name: Cow::Borrowed("barrier") },
            TraceEv::Fetch { owner: 3, blocks: 16, remote: true },
            TraceEv::Store { owner: 0, blocks: 4, remote: false },
            TraceEv::MergeIssued { pass: 0, group: 1, batch: 2, batches: 6 },
            TraceEv::MergeEmitted { pass: 1, group: 0, batch: 5, batches: 6 },
            TraceEv::MergePar {
                pass: 0,
                group: 1,
                batch: 2,
                thread: 1,
                threads: 4,
                len: 40,
                total: 160,
            },
            TraceEv::PoolStats {
                hits: 120,
                misses: 16,
                recycled: 130,
                discarded: 2,
                copied_bytes: 4096,
            },
            TraceEv::PeerDead { peer: 2 },
            TraceEv::EpochAdvance { epoch: 7 },
        ]
    }

    #[test]
    fn records_roundtrip_through_json() {
        for (i, ev) in sample_evs().into_iter().enumerate() {
            for op in [TraceOp::Begin(9), TraceOp::End(9), TraceOp::Instant] {
                let rec = TraceRecord { rank: 3, ts_ns: 1234 + i as u64, op, ev: ev.clone() };
                let back = TraceRecord::from_json(&rec.to_json()).expect("roundtrip");
                assert_eq!(back, rec);
            }
        }
    }

    #[test]
    fn off_tracer_is_a_no_op() {
        let t = Tracer::off();
        assert!(!t.enabled());
        let id = t.begin(TraceEv::Phase { phase: Phase::FinalMerge });
        assert_eq!(id, 0);
        t.end(id, TraceEv::Phase { phase: Phase::FinalMerge });
        t.instant(TraceEv::PeerDead { peer: 0 });
        t.progress(Phase::FinalMerge, 1, 2);
        t.flush();
        assert!(t.drain().is_empty());
    }

    #[test]
    fn buffer_tracer_records_spans_and_monotone_timestamps() {
        let t = Tracer::to_buffer(5);
        let sp = t.begin(TraceEv::Phase { phase: Phase::RunFormation });
        t.instant(TraceEv::MergeIssued { pass: 0, group: 0, batch: 0, batches: 1 });
        t.end(sp, TraceEv::Phase { phase: Phase::RunFormation });
        let recs = t.drain();
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.rank == 5));
        validate_rank_journal(&recs).expect("valid journal");
        assert_eq!(recs[0].op, TraceOp::Begin(sp));
        assert_eq!(recs[2].op, TraceOp::End(sp));
    }

    #[test]
    fn file_tracer_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("demsort-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("rank0.jsonl");
        let t = Tracer::to_path(0, &path).expect("create");
        let sp = t.begin(TraceEv::Collective { name: Cow::Borrowed("barrier") });
        t.end(sp, TraceEv::Collective { name: Cow::Borrowed("barrier") });
        t.flush();
        let text = std::fs::read_to_string(&path).expect("read");
        let recs = read_journal(&text).expect("parse");
        assert_eq!(recs.len(), 2);
        validate_rank_journal(&recs).expect("valid");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn progress_callback_sees_byte_meter() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let t = Tracer::to_buffer(2)
            .with_progress(Box::new(move |f| sink.lock().expect("lock").push(*f)));
        t.add_bytes(100);
        t.progress(Phase::FinalMerge, 3, 8);
        let frames = seen.lock().expect("lock");
        assert_eq!(
            frames.as_slice(),
            &[ProgressFrame {
                rank: 2,
                phase: Phase::FinalMerge,
                batch: 3,
                batches: 8,
                bytes: 100
            }]
        );
    }

    #[test]
    fn validation_rejects_broken_journals() {
        let ev = || TraceEv::Collective { name: Cow::Borrowed("barrier") };
        let rec = |ts_ns, op| TraceRecord { rank: 0, ts_ns, op, ev: ev() };
        // Unclosed span.
        let err = validate_rank_journal(&[rec(1, TraceOp::Begin(1))]).expect_err("unclosed");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("never closed")), "{err}");
        // Double close.
        let err = validate_rank_journal(&[
            rec(1, TraceOp::Begin(1)),
            rec(2, TraceOp::End(1)),
            rec(3, TraceOp::End(1)),
        ])
        .expect_err("double close");
        assert!(
            matches!(err, Error::Validation(ref m) if m.contains("without a matching")),
            "{err}"
        );
        // Kind mismatch between begin and end.
        let err = validate_rank_journal(&[
            rec(1, TraceOp::Begin(1)),
            TraceRecord {
                rank: 0,
                ts_ns: 2,
                op: TraceOp::End(1),
                ev: TraceEv::Phase { phase: Phase::FinalMerge },
            },
        ])
        .expect_err("kind mismatch");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("closed as")), "{err}");
        // Time going backwards.
        let err = validate_rank_journal(&[rec(5, TraceOp::Instant), rec(4, TraceOp::Instant)])
            .expect_err("time warp");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("goes back")), "{err}");
        // Phases out of order.
        let phase = |ts_ns, id, phase| TraceRecord {
            rank: 0,
            ts_ns,
            op: TraceOp::Begin(id),
            ev: TraceEv::Phase { phase },
        };
        let err = validate_rank_journal(&[
            phase(1, 1, Phase::FinalMerge),
            phase(2, 2, Phase::RunFormation),
        ])
        .expect_err("phase order");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("opened after")), "{err}");
        // Mixed ranks in one journal.
        let err = validate_rank_journal(&[
            rec(1, TraceOp::Instant),
            TraceRecord { rank: 1, ts_ns: 2, op: TraceOp::Instant, ev: ev() },
        ])
        .expect_err("mixed ranks");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("rank")), "{err}");
    }

    #[test]
    fn merge_par_thread_ranges_must_cover_the_batch() {
        let span = |ts_ns, id, op, thread, len| TraceRecord {
            rank: 0,
            ts_ns,
            op: match op {
                0 => TraceOp::Begin(id),
                _ => TraceOp::End(id),
            },
            ev: TraceEv::MergePar {
                pass: 0,
                group: 0,
                batch: 3,
                thread,
                threads: 2,
                len,
                total: 10,
            },
        };
        // Complete set summing to the total: valid (threads overlap in
        // time, as real merge threads do).
        validate_rank_journal(&[
            span(1, 1, 0, 0, 6),
            span(2, 2, 0, 1, 4),
            span(3, 2, 1, 1, 4),
            span(4, 1, 1, 0, 6),
        ])
        .expect("complete batch");
        // Lengths that do not sum to the batch total.
        let err = validate_rank_journal(&[
            span(1, 1, 0, 0, 6),
            span(2, 2, 0, 1, 5),
            span(3, 2, 1, 1, 5),
            span(4, 1, 1, 0, 6),
        ])
        .expect_err("bad sum");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("sum to")), "{err}");
        // A thread index opened twice within one batch.
        let err = validate_rank_journal(&[
            span(1, 1, 0, 0, 6),
            span(2, 2, 0, 0, 4),
            span(3, 2, 1, 0, 4),
            span(4, 1, 1, 0, 6),
        ])
        .expect_err("dup thread");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("twice")), "{err}");
        // A batch that never opens its full thread set.
        let err = validate_rank_journal(&[span(1, 1, 0, 0, 6), span(2, 1, 1, 0, 6)])
            .expect_err("incomplete");
        assert!(matches!(err, Error::Validation(ref m) if m.contains("only 1")), "{err}");
        // A re-merged batch may reuse the same (pass, group, batch) key
        // with a different shape, as long as each set completes.
        let redo = |ts_ns, id, op, thread, len| TraceRecord {
            rank: 0,
            ts_ns,
            op: match op {
                0 => TraceOp::Begin(id),
                _ => TraceOp::End(id),
            },
            ev: TraceEv::MergePar {
                pass: 0,
                group: 0,
                batch: 3,
                thread,
                threads: 1,
                len,
                total: len,
            },
        };
        validate_rank_journal(&[
            span(1, 1, 0, 0, 6),
            span(2, 2, 0, 1, 4),
            span(3, 2, 1, 1, 4),
            span(4, 1, 1, 0, 6),
            redo(5, 3, 0, 0, 9),
            redo(6, 3, 1, 0, 9),
        ])
        .expect("re-merge with a fresh complete set");
    }

    #[test]
    fn merged_timeline_orders_by_timestamp_then_rank() {
        let r = |rank, ts_ns| TraceRecord {
            rank,
            ts_ns,
            op: TraceOp::Instant,
            ev: TraceEv::EpochAdvance { epoch: 1 },
        };
        let merged = merge_journals(vec![vec![r(1, 10), r(1, 30)], vec![r(0, 10), r(0, 20)]]);
        let order: Vec<(usize, u64)> = merged.iter().map(|x| (x.rank, x.ts_ns)).collect();
        assert_eq!(order, vec![(0, 10), (1, 10), (0, 20), (1, 30)]);
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_pid_per_rank() {
        let t = Tracer::to_buffer(4);
        let sp = t.begin(TraceEv::Phase { phase: Phase::RunFormation });
        t.instant(TraceEv::Fetch { owner: 1, blocks: 2, remote: true });
        t.end(sp, TraceEv::Phase { phase: Phase::RunFormation });
        let text = chrome_trace(&t.drain());
        let v = Json::parse(&text).expect("valid JSON");
        let events = v.as_arr().expect("array");
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.get("pid").and_then(Json::as_u64) == Some(4)));
        let phs: Vec<&str> =
            events.iter().filter_map(|e| e.get("ph").and_then(Json::as_str)).collect();
        assert_eq!(phs, vec!["B", "i", "E"]);
    }
}
