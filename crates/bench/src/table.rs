//! Plain-text table and CSV output for experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table with a title, printed to stdout and
/// optionally dumped as CSV into `results/`.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write as CSV to `dir/name.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        std::fs::write(dir.join(format!("{name}.csv")), s)
    }
}

/// Format seconds with 1 decimal.
pub fn secs(s: f64) -> String {
    format!("{s:.1}")
}

/// Format a ratio with 4 decimals (Figure 5 spans 0.001..10, so use
/// scientific notation below 0.01).
pub fn ratio(r: f64) -> String {
    if r != 0.0 && r.abs() < 0.01 {
        format!("{r:.2e}")
    } else {
        format!("{r:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_and_csv() {
        let mut t = Table::new("demo", &["P", "time"]);
        t.row(vec!["1".into(), "10.0".into()]);
        t.row(vec!["64".into(), "9.5".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains(" P"));
        let dir = std::env::temp_dir().join(format!("demsort-table-{}", std::process::id()));
        t.write_csv(&dir, "demo").expect("csv");
        let csv = std::fs::read_to_string(dir.join("demo.csv")).expect("read");
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("P,time"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(0.5), "0.5000");
        assert_eq!(ratio(0.001), "1.00e-3");
        assert_eq!(ratio(0.0), "0.0000");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
