//! The run directory: global metadata about formed runs.
//!
//! After run formation, run `j` is a globally sorted sequence of up to
//! `M` elements whose canonical slice `i` sits on PE `i`'s local disks.
//! Phase 2 (multiway selection + all-to-all) needs to address *run
//! element `x` of run `j`* wherever it lives, so after phase 1 every PE
//! learns, for every run:
//!
//! * each PE's slice length (prefix offsets map run-global element
//!   indexes to `(pe, local index)`),
//! * each slice's on-disk block list (to probe a remote element), and
//! * the merged **sample** (every `K`-th element, Section IV-A /
//!   Appendix B) that warm-starts the selection.
//!
//! All of this is `o(N)`: per run, `P` lengths + `N/(M/B)` block ids +
//! `M/K` samples.

use crate::recio::{FinishedRun, Sample};
use demsort_net::Communicator;
use demsort_storage::{BlockId, Run};
use demsort_types::{Record, Result};

/// Per-PE slice metadata of one run, as seen by every PE.
#[derive(Clone, Debug, Default)]
pub struct SliceMeta {
    /// Number of elements in the slice.
    pub elems: u64,
    /// The slice's on-disk blocks (block ids are local to the owner).
    pub blocks: Vec<BlockId>,
}

/// Global metadata of one run.
#[derive(Clone, Debug, Default)]
pub struct RunMeta<R: Record> {
    /// Slice metadata, indexed by PE.
    pub slices: Vec<SliceMeta>,
    /// Prefix offsets: slice `i` covers run elements
    /// `offsets[i]..offsets[i+1]` (length `P + 1`).
    pub offsets: Vec<u64>,
    /// Merged sample with run-global positions, ascending.
    pub samples: Vec<Sample<R>>,
}

impl<R: Record> RunMeta<R> {
    /// Total elements in the run.
    pub fn elems(&self) -> u64 {
        *self.offsets.last().expect("offsets nonempty")
    }

    /// Which PE owns run-global element `x`, and its local index.
    pub fn locate(&self, x: u64) -> (usize, u64) {
        debug_assert!(x < self.elems());
        // offsets is sorted; find the slice containing x.
        let pe = self.offsets.partition_point(|&o| o <= x) - 1;
        (pe, x - self.offsets[pe])
    }
}

/// Everything a PE knows about all runs after phase 1.
#[derive(Clone, Debug, Default)]
pub struct RunDirectory<R: Record> {
    /// Global metadata per run.
    pub runs: Vec<RunMeta<R>>,
    /// This PE's local slice (blocks + prediction keys) per run.
    pub local: Vec<FinishedRun<R>>,
}

impl<R: Record> RunDirectory<R> {
    /// Number of runs.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Total elements across all runs.
    pub fn total_elems(&self) -> u64 {
        self.runs.iter().map(|r| r.elems()).sum()
    }
}

/// Exchange local slice metadata into the global [`RunDirectory`].
///
/// Collective: every PE contributes its local [`FinishedRun`] per run
/// (one entry per run, possibly empty slices).
///
/// # Errors
/// [`Error::Comm`](demsort_types::Error) if the metadata allgather of
/// any run fails (dead or silent peer).
pub fn build_directory<R: Record + Ord>(
    comm: &Communicator,
    local: Vec<FinishedRun<R>>,
) -> Result<RunDirectory<R>> {
    let p = comm.size();
    let nruns = local.len();
    let mut runs = Vec::with_capacity(nruns);
    for (j, fr) in local.iter().enumerate() {
        let gathered = comm.allgather(encode_slice_meta(fr))?;
        let mut slices = Vec::with_capacity(p);
        let mut per_pe_samples = Vec::with_capacity(p);
        for buf in &gathered {
            let (meta, samples) = decode_slice_meta::<R>(buf);
            slices.push(meta);
            per_pe_samples.push(samples);
        }
        let mut offsets = Vec::with_capacity(p + 1);
        offsets.push(0u64);
        for s in &slices {
            offsets.push(offsets.last().expect("nonempty") + s.elems);
        }
        // Merge samples: shift local positions to run-global ones.
        let mut samples = Vec::new();
        for (pe, ss) in per_pe_samples.into_iter().enumerate() {
            let base = offsets[pe];
            samples.extend(ss.into_iter().map(|s| Sample { pos: base + s.pos, rec: s.rec }));
        }
        debug_assert!(samples.windows(2).all(|w| w[0].pos < w[1].pos), "run {j} samples ordered");
        runs.push(RunMeta { slices, offsets, samples });
    }
    Ok(RunDirectory { runs, local })
}

fn encode_slice_meta<R: Record>(fr: &FinishedRun<R>) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(16 + fr.run.blocks.len() * 8 + fr.samples.len() * (8 + R::BYTES));
    out.extend_from_slice(&fr.elems.to_le_bytes());
    out.extend_from_slice(&(fr.run.blocks.len() as u32).to_le_bytes());
    out.extend_from_slice(&(fr.samples.len() as u32).to_le_bytes());
    for b in &fr.run.blocks {
        out.extend_from_slice(&b.disk.to_le_bytes());
        out.extend_from_slice(&b.slot.to_le_bytes());
    }
    let mut rec_buf = vec![0u8; R::BYTES];
    for s in &fr.samples {
        out.extend_from_slice(&s.pos.to_le_bytes());
        s.rec.encode(&mut rec_buf);
        out.extend_from_slice(&rec_buf);
    }
    out
}

fn decode_slice_meta<R: Record>(buf: &[u8]) -> (SliceMeta, Vec<Sample<R>>) {
    let elems = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
    let nblocks = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
    let nsamples = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
    let mut pos = 16;
    let mut blocks = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        let disk = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"));
        let slot = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        blocks.push(BlockId::new(disk, slot));
        pos += 8;
    }
    let mut samples = Vec::with_capacity(nsamples);
    for _ in 0..nsamples {
        let spos = u64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes"));
        let rec = R::decode(&buf[pos + 8..pos + 8 + R::BYTES]);
        samples.push(Sample { pos: spos, rec });
        pos += 8 + R::BYTES;
    }
    (SliceMeta { elems, blocks }, samples)
}

/// The run a [`SliceMeta`] describes (for constructing readers over a
/// remote or local slice).
pub fn slice_run(meta: &SliceMeta, block_bytes: usize) -> Run {
    Run { blocks: meta.blocks.clone(), bytes: meta.blocks.len() as u64 * block_bytes as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_net::run_cluster;
    use demsort_types::Element16;

    fn finished(pe: usize, elems: u64) -> FinishedRun<Element16> {
        FinishedRun {
            run: Run {
                blocks: (0..elems.div_ceil(4)).map(|i| BlockId::new(pe as u32, i as u32)).collect(),
                bytes: elems.div_ceil(4) * 64,
            },
            elems,
            samples: (0..elems)
                .step_by(4)
                .map(|p| Sample { pos: p, rec: Element16::new(p * 10 + pe as u64, p) })
                .collect(),
            block_first_keys: Vec::new(),
        }
    }

    #[test]
    fn meta_encode_decode_roundtrip() {
        let fr = finished(1, 11);
        let buf = encode_slice_meta(&fr);
        let (meta, samples) = decode_slice_meta::<Element16>(&buf);
        assert_eq!(meta.elems, 11);
        assert_eq!(meta.blocks, fr.run.blocks);
        assert_eq!(samples, fr.samples);
    }

    #[test]
    fn directory_offsets_and_locate() {
        let p = 3;
        let dirs = run_cluster(p, move |c| {
            // PE i's slice has 10·(i+1) elements.
            let fr = finished(c.rank(), 10 * (c.rank() as u64 + 1));
            build_directory(&c, vec![fr]).expect("directory")
        });
        for d in &dirs {
            let run = &d.runs[0];
            assert_eq!(run.offsets, vec![0, 10, 30, 60]);
            assert_eq!(run.elems(), 60);
            assert_eq!(run.locate(0), (0, 0));
            assert_eq!(run.locate(9), (0, 9));
            assert_eq!(run.locate(10), (1, 0));
            assert_eq!(run.locate(29), (1, 19));
            assert_eq!(run.locate(59), (2, 29));
        }
    }

    #[test]
    fn samples_get_global_positions() {
        let p = 2;
        let dirs = run_cluster(p, move |c| {
            let fr = finished(c.rank(), 8);
            build_directory(&c, vec![fr]).expect("directory")
        });
        let samples = &dirs[0].runs[0].samples;
        let positions: Vec<u64> = samples.iter().map(|s| s.pos).collect();
        assert_eq!(positions, vec![0, 4, 8, 12], "PE1's local 0,4 shifted by 8");
    }

    #[test]
    fn empty_slices_are_representable() {
        let p = 2;
        let dirs = run_cluster(p, move |c| {
            let fr = if c.rank() == 0 { finished(0, 5) } else { FinishedRun::empty() };
            build_directory(&c, vec![fr]).expect("directory")
        });
        assert_eq!(dirs[0].runs[0].offsets, vec![0, 5, 5]);
        assert_eq!(dirs[0].runs[0].locate(4), (0, 4));
    }

    #[test]
    fn multiple_runs_kept_separate() {
        let dirs = run_cluster(2, move |c| {
            let a = finished(c.rank(), 4);
            let b = finished(c.rank(), 6);
            build_directory(&c, vec![a, b]).expect("directory")
        });
        assert_eq!(dirs[0].num_runs(), 2);
        assert_eq!(dirs[0].runs[0].elems(), 8);
        assert_eq!(dirs[0].runs[1].elems(), 12);
        assert_eq!(dirs[0].total_elems(), 20);
    }
}
