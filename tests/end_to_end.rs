//! Integration tests spanning all crates: full distributed external
//! sorts across cluster sizes, input classes, record types, and
//! storage backends, validated with the collective validator.

use demsort::core::canonical::sort_cluster;
use demsort::core::recio::read_records;
use demsort::core::validate::{validate_output, Fingerprint};
use demsort::net::run_cluster;
use demsort::prelude::*;
use demsort::workloads::{generate_all, generate_pe_input, gensort_records};

fn tiny_cfg(pes: usize) -> SortConfig {
    SortConfig::new(MachineConfig::tiny(pes), AlgoConfig::default()).expect("valid")
}

/// Sort, then validate collectively (sorted + boundaries + permutation).
fn sort_and_validate(cfg: &SortConfig, spec: InputSpec, local_n: usize) {
    let p = cfg.machine.pes;
    let outcome = sort_cluster::<Element16, _>(cfg, move |pe, p| {
        generate_pe_input(spec, 0xABCD, pe, p, local_n)
    })
    .expect("sort");
    let input_fp = {
        let mut f = Fingerprint::default();
        for r in generate_all(spec, 0xABCD, p, local_n) {
            f.add(&r);
        }
        f
    };
    let storage = &outcome.storage;
    let outputs: Vec<_> = outcome.per_pe.iter().map(|o| o.output.clone()).collect();
    let outputs = &outputs;
    let reports = run_cluster(p, move |c| {
        validate_output::<Element16>(&c, storage.pe(c.rank()), &outputs[c.rank()])
            .expect("validate")
    });
    assert!(
        reports[0].is_valid_sort_of(input_fp),
        "invalid sort: {spec:?} P={p} n={local_n}: {:?}",
        reports[0]
    );
}

#[test]
fn cluster_size_sweep_uniform() {
    for p in [1, 2, 3, 4, 6, 8] {
        sort_and_validate(&tiny_cfg(p), InputSpec::Uniform, 500);
    }
}

#[test]
fn input_class_matrix() {
    let cfg = tiny_cfg(4);
    for spec in [
        InputSpec::Uniform,
        InputSpec::Sorted,
        InputSpec::ReverseSorted,
        InputSpec::SkewedToOne,
        InputSpec::Constant,
        InputSpec::Banded { block_elems: 16 },
    ] {
        for n in [0usize, 1, 100, 777] {
            sort_and_validate(&cfg, spec, n);
        }
    }
}

#[test]
fn algorithm_switch_matrix() {
    for randomize in [false, true] {
        for overlap in [false, true] {
            for sample_every in [0usize, 16] {
                for cache in [0usize, 8] {
                    let algo = AlgoConfig {
                        randomize,
                        overlap,
                        sample_every,
                        selection_cache_blocks: cache,
                        ..AlgoConfig::default()
                    };
                    let cfg = SortConfig::new(MachineConfig::tiny(3), algo).expect("valid");
                    sort_and_validate(&cfg, InputSpec::Banded { block_elems: 16 }, 400);
                }
            }
        }
    }
}

#[test]
fn sortbenchmark_records_end_to_end() {
    // Record100 needs blocks ≥ 100 bytes; tiny's 256-byte blocks hold 2.
    let cfg = tiny_cfg(3);
    let local_n = 600usize;
    let outcome = sort_cluster::<Record100, _>(&cfg, move |pe, _| {
        gensort_records(99, (pe * local_n) as u64, local_n)
    })
    .expect("sort");
    let mut all: Vec<Record100> = Vec::new();
    for (pe, o) in outcome.per_pe.iter().enumerate() {
        all.extend(
            read_records::<Record100>(outcome.storage.pe(pe), &o.output.run, o.output.elems)
                .expect("read"),
        );
    }
    assert_eq!(all.len(), 3 * local_n);
    assert!(all.windows(2).all(|w| w[0].key <= w[1].key), "globally sorted by 10-byte key");
    // Permutation via recovered gensort indices.
    let mut indices: Vec<u64> = all.iter().map(demsort::workloads::record_index).collect();
    indices.sort_unstable();
    let expect: Vec<u64> = (0..(3 * local_n) as u64).collect();
    assert_eq!(indices, expect, "every generated record survives exactly once");
}

#[test]
fn file_backed_storage_end_to_end() {
    // Real files instead of RAM: the same sort must work through the
    // FileBackend (true external memory).
    use demsort::core::canonical::canonical_mergesort;
    use demsort::core::ctx::ClusterStorage;
    use demsort::core::runform::ingest_input;
    use demsort::storage::{Backend, FileBackend};
    use std::sync::Arc;

    let p = 2;
    let machine = MachineConfig::tiny(p);
    let dir = std::env::temp_dir().join(format!("demsort-e2e-{}", std::process::id()));
    let mut pe_idx = 0;
    let storage = ClusterStorage::with_backends(&machine, |m| {
        let b: Arc<dyn Backend> = Arc::new(
            FileBackend::create(&dir.join(format!("pe{pe_idx}")), m.disks_per_pe, m.block_bytes)
                .expect("create files"),
        );
        pe_idx += 1;
        b
    });
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid");
    let storage_ref = &storage;
    let cfg2 = cfg.clone();
    let outcomes = run_cluster(p, move |c| {
        let st = storage_ref.pe(c.rank());
        let recs = generate_pe_input(InputSpec::Uniform, 5, c.rank(), p, 600);
        let input = ingest_input(st, &recs).expect("ingest");
        canonical_mergesort::<Element16>(&c, storage_ref, &cfg2, input, 1).expect("sort")
    });
    let mut all = Vec::new();
    for (pe, o) in outcomes.iter().enumerate() {
        all.extend(
            read_records::<Element16>(storage.pe(pe), &o.output.run, o.output.elems).expect("read"),
        );
    }
    let mut reference = generate_all(InputSpec::Uniform, 5, p, 600);
    reference.sort_unstable();
    assert_eq!(all, reference, "file-backed sort matches");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hierarchical_parallelism_cores_within_pes() {
    // Section IV-E "Hierarchical Parallelism": multiple cores per PE
    // must not change the result, only the work distribution.
    let mut machine = MachineConfig::tiny(3);
    machine.cores_per_pe = 4;
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid");
    sort_and_validate(&cfg, InputSpec::Uniform, 900);
    sort_and_validate(&cfg, InputSpec::Banded { block_elems: 16 }, 640);
}

#[test]
fn power_law_skew_sorts_with_exact_balance() {
    // Power-law key skew stresses exact splitting: heavy duplication
    // near zero keys, yet output sizes stay canonical by construction.
    let cfg = tiny_cfg(4);
    for alpha in [20u8, 40] {
        sort_and_validate(&cfg, InputSpec::PowerLaw { alpha_x10: alpha }, 800);
    }
}

#[test]
fn determinism_same_seed_same_output() {
    let cfg = tiny_cfg(3);
    let run = || {
        let outcome = sort_cluster::<Element16, _>(&cfg, |pe, p| {
            generate_pe_input(InputSpec::Uniform, 11, pe, p, 500)
        })
        .expect("sort");
        let mut all = Vec::new();
        for (pe, o) in outcome.per_pe.iter().enumerate() {
            all.extend(
                read_records::<Element16>(outcome.storage.pe(pe), &o.output.run, o.output.elems)
                    .expect("read"),
            );
        }
        (all, outcome.report.io_volume_over_n())
    };
    let (a, io_a) = run();
    let (b, io_b) = run();
    assert_eq!(a, b, "same seed, same output");
    assert_eq!(io_a, io_b, "same seed, same traffic");
}

#[test]
fn striped_and_canonical_agree() {
    use demsort::core::ctx::ClusterStorage;
    use demsort::core::runform::ingest_input;
    use demsort::core::striped::{read_striped, striped_mergesort};

    let p = 3;
    let local_n = 700usize;
    let cfg = tiny_cfg(p);

    let canonical = sort_cluster::<Element16, _>(&cfg, move |pe, p| {
        generate_pe_input(InputSpec::Uniform, 21, pe, p, local_n)
    })
    .expect("canonical");
    let mut canonical_all = Vec::new();
    for (pe, o) in canonical.per_pe.iter().enumerate() {
        canonical_all.extend(
            read_records::<Element16>(canonical.storage.pe(pe), &o.output.run, o.output.elems)
                .expect("read"),
        );
    }

    let storage = ClusterStorage::new_mem(&cfg.machine);
    let storage_ref = &storage;
    let cfg2 = cfg.clone();
    let outcomes = run_cluster(p, move |c| {
        let st = storage_ref.pe(c.rank());
        let recs = generate_pe_input(InputSpec::Uniform, 21, c.rank(), p, local_n);
        let input = ingest_input(st, &recs).expect("ingest");
        striped_mergesort::<Element16>(&c, storage_ref, &cfg2, input, 1, None).expect("striped")
    });
    let striped_all = read_striped::<Element16>(&storage, &outcomes[0].output).expect("read");

    let keys_c: Vec<u64> = canonical_all.iter().map(|e| e.key).collect();
    let keys_s: Vec<u64> = striped_all.iter().map(|e| e.key).collect();
    assert_eq!(keys_c, keys_s, "both algorithms produce the same sorted keys");
}
