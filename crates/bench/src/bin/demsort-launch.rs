//! `demsort-launch` — spawn a local multi-process demsort cluster and
//! sort a file (the suite's `mpirun`).
//!
//! ```text
//! demsort-launch [--ranks P] [--mem-mib M] [--block-kib K] [--disks D]
//!                [--seed S] [--timeout-ms T] [--worker-bin PATH]
//!                INPUT OUTPUT
//! ```
//!
//! Spawns `P` `demsort-worker` processes, rendezvouses them over a
//! loopback coordinator port, distributes the job, and aggregates the
//! per-rank reports. The workers run the identical SPMD code path as
//! `sortfile`'s in-process cluster — same algorithms, same counters —
//! so the two modes are directly comparable.

use demsort_bench::procs::{launch, sibling_worker_bin};
use demsort_types::{AlgoConfig, JobConfig, MachineConfig};

fn main() {
    let mut ranks = 4usize;
    let mut mem_mib = 8usize;
    let mut block_kib = 64usize;
    let mut disks = 4usize;
    let mut seed: Option<u64> = None;
    let mut timeout_ms = 30_000u64;
    let mut worker_bin: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut next = |flag: &str| args.next().unwrap_or_else(|| die(&format!("{flag} VALUE")));
        match a.as_str() {
            "--ranks" => ranks = parse(&next("--ranks"), "ranks"),
            "--mem-mib" => mem_mib = parse(&next("--mem-mib"), "mem-mib"),
            "--block-kib" => block_kib = parse(&next("--block-kib"), "block-kib"),
            "--disks" => disks = parse(&next("--disks"), "disks"),
            "--seed" => seed = Some(parse(&next("--seed"), "seed")),
            "--timeout-ms" => timeout_ms = parse(&next("--timeout-ms"), "timeout-ms"),
            "--worker-bin" => worker_bin = Some(next("--worker-bin")),
            "--help" | "-h" => {
                println!(
                    "demsort-launch [--ranks P] [--mem-mib M] [--block-kib K] [--disks D]\n\
                     \x20              [--seed S] [--timeout-ms T] [--worker-bin PATH]\n\
                     \x20              INPUT OUTPUT"
                );
                return;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [input, output] = positional.as_slice() else {
        die("usage: demsort-launch [flags] INPUT OUTPUT (see --help)");
    };

    let algo = match seed {
        Some(s) => AlgoConfig { seed: s, ..AlgoConfig::default() },
        None => AlgoConfig::default(),
    };
    let job = JobConfig {
        input: input.clone(),
        output: output.clone(),
        machine: MachineConfig {
            pes: ranks,
            disks_per_pe: disks,
            block_bytes: block_kib << 10,
            mem_bytes_per_pe: mem_mib << 20,
            cores_per_pe: std::thread::available_parallelism()
                .map_or(1, |c| c.get() / ranks.max(1))
                .max(1),
        },
        algo,
        read_timeout_ms: timeout_ms,
    };

    let worker = match worker_bin {
        Some(p) => std::path::PathBuf::from(p),
        None => sibling_worker_bin().unwrap_or_else(|e| die(&e.to_string())),
    };

    eprintln!(
        "launching {ranks} worker processes ({} each) via {}",
        demsort_types::fmtsize::fmt_bytes(job.machine.mem_bytes_per_pe as u64),
        worker.display()
    );
    match launch(&job, &worker) {
        Ok(outcome) => {
            for rep in &outcome.per_rank {
                eprintln!("  rank {}: {} records, {} runs", rep.rank, rep.elems, rep.runs);
            }
            eprintln!(
                "done: {} records on {ranks} ranks, {} runs, I/O volume {:.2} N, \
                 communication {:.2} N",
                outcome.report.elements,
                outcome.report.runs,
                outcome.report.io_volume_over_n(),
                outcome.report.comm_volume_over_n(),
            );
        }
        Err(e) => {
            eprintln!("demsort-launch: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    demsort_bench::procs::cli_parse("demsort-launch", s, what)
}

fn die(msg: &str) -> ! {
    demsort_bench::procs::cli_die("demsort-launch", msg)
}
