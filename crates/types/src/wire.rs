//! Wire codec for cluster control messages.
//!
//! The multi-process runtime (`demsort-launch` / `demsort-worker`)
//! ships job configuration to workers and collects per-rank reports
//! back over the coordinator connection. This module is the shared
//! vocabulary for that control plane: a tiny, dependency-free
//! little-endian codec plus encode/decode for the config and counter
//! types. Payloads are versioned by the launcher protocol, not here —
//! the codec is strictly structural.

use crate::config::{AlgoConfig, JobConfig, MachineConfig, SortAlgo};
use crate::counters::{CommCounters, CpuCounters, IoCounters, Phase, PhaseStats};
use crate::error::{Error, Result};
use crate::trace::ProgressFrame;

/// Append-only encoder over a byte buffer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Start with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, x: u8) -> &mut Self {
        self.buf.push(x);
        self
    }

    pub fn u32(&mut self, x: u32) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.buf.extend_from_slice(&x.to_le_bytes());
        self
    }

    pub fn bool(&mut self, x: bool) -> &mut Self {
        self.u8(x as u8)
    }

    /// Length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }
}

/// Cursor-based decoder over a byte slice. Every read is
/// bounds-checked and returns [`Error::Comm`] on truncation — a
/// malformed control frame must never panic a worker.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::comm(format!(
                "truncated control frame: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| Error::comm("control frame string is not UTF-8"))
    }

    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
}

// -------------------------------------------------------------------
// Config codecs
// -------------------------------------------------------------------

/// Encode a [`MachineConfig`].
pub fn encode_machine(w: &mut WireWriter, m: &MachineConfig) {
    w.u64(m.pes as u64)
        .u64(m.disks_per_pe as u64)
        .u64(m.block_bytes as u64)
        .u64(m.mem_bytes_per_pe as u64)
        .u64(m.cores_per_pe as u64);
}

/// Decode a [`MachineConfig`].
pub fn decode_machine(r: &mut WireReader<'_>) -> Result<MachineConfig> {
    Ok(MachineConfig {
        pes: r.u64()? as usize,
        disks_per_pe: r.u64()? as usize,
        block_bytes: r.u64()? as usize,
        mem_bytes_per_pe: r.u64()? as usize,
        cores_per_pe: r.u64()? as usize,
    })
}

/// Encode an [`AlgoConfig`].
pub fn encode_algo(w: &mut WireWriter, a: &AlgoConfig) {
    w.bool(a.randomize)
        .u64(a.sample_every as u64)
        .u64(a.selection_cache_blocks as u64)
        .bool(a.overlap)
        .u64(a.seed)
        .f64(a.alltoall_mem_fraction)
        .u64(a.replication as u64)
        .u64(a.pool_blocks as u64)
        .u64(a.par_merge_min_per_thread as u64);
}

/// Decode an [`AlgoConfig`].
pub fn decode_algo(r: &mut WireReader<'_>) -> Result<AlgoConfig> {
    Ok(AlgoConfig {
        randomize: r.bool()?,
        sample_every: r.u64()? as usize,
        selection_cache_blocks: r.u64()? as usize,
        overlap: r.bool()?,
        seed: r.u64()?,
        alltoall_mem_fraction: r.f64()?,
        replication: r.u64()? as usize,
        pool_blocks: r.u64()? as usize,
        par_merge_min_per_thread: r.u64()? as usize,
    })
}

fn algo_tag(a: SortAlgo) -> u8 {
    match a {
        SortAlgo::Canonical => 0,
        SortAlgo::Striped => 1,
    }
}

fn algo_from_tag(t: u8) -> Result<SortAlgo> {
    match t {
        0 => Ok(SortAlgo::Canonical),
        1 => Ok(SortAlgo::Striped),
        _ => Err(Error::comm(format!("unknown algorithm tag {t}"))),
    }
}

/// Encode a [`JobConfig`].
pub fn encode_job(job: &JobConfig) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.string(&job.input).string(&job.output);
    encode_machine(&mut w, &job.machine);
    encode_algo(&mut w, &job.algo);
    w.u8(algo_tag(job.algorithm));
    w.u64(job.read_timeout_ms);
    w.string(&job.trace_dir);
    w.finish()
}

/// Decode a [`JobConfig`].
pub fn decode_job(buf: &[u8]) -> Result<JobConfig> {
    let mut r = WireReader::new(buf);
    Ok(JobConfig {
        input: r.string()?,
        output: r.string()?,
        machine: decode_machine(&mut r)?,
        algo: decode_algo(&mut r)?,
        algorithm: algo_from_tag(r.u8()?)?,
        read_timeout_ms: r.u64()?,
        trace_dir: r.string()?,
    })
}

// -------------------------------------------------------------------
// Progress frame codec (worker -> launcher live status)
// -------------------------------------------------------------------

/// Encode a [`ProgressFrame`]: `[rank][phase][batch][batches][bytes]`.
///
/// Workers stream these over the coordinator control connection while
/// the sort runs so the launcher can render live per-rank status.
pub fn encode_progress(f: &ProgressFrame) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u32(f.rank as u32).u8(f.phase.index() as u8).u64(f.batch).u64(f.batches).u64(f.bytes);
    w.finish()
}

/// Decode a [`ProgressFrame`].
///
/// # Errors
/// [`Error::Comm`] on truncation, an unknown phase tag, or trailing
/// garbage.
pub fn decode_progress(buf: &[u8]) -> Result<ProgressFrame> {
    let mut r = WireReader::new(buf);
    let rank = r.u32()? as usize;
    let tag = r.u8()? as usize;
    let phase = *Phase::ALL
        .get(tag)
        .ok_or_else(|| Error::comm(format!("unknown phase tag {tag} in progress frame")))?;
    let frame = ProgressFrame { rank, phase, batch: r.u64()?, batches: r.u64()?, bytes: r.u64()? };
    if r.remaining() != 0 {
        return Err(Error::comm(format!(
            "progress frame carries {} trailing bytes",
            r.remaining()
        )));
    }
    Ok(frame)
}

// -------------------------------------------------------------------
// Block-store frame codecs (the write half of the block service)
// -------------------------------------------------------------------

/// Outcome of one remote block store, as carried by a response frame:
/// the address the serving rank assigned (`Ok`) or its error message.
pub type StoreReply = std::result::Result<(u32, u32), String>;

/// Encode a block-store request payload: `[id][disk_hint][data]`.
///
/// `id` matches the response to the request (the store protocol is
/// pipelined, like fetches); `disk_hint` asks the serving rank to place
/// the copy on the same local disk index the original occupies, so a
/// replica preserves the owner's striping. The data must be the last
/// field — [`decode_store_req`] rejects any length mismatch.
pub fn encode_store_req(id: u64, disk_hint: u32, data: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(id).u32(disk_hint).u32(data.len() as u32);
    let mut buf = w.finish();
    buf.extend_from_slice(data);
    buf
}

/// Decode a block-store request payload into `(id, disk_hint, data)`.
///
/// # Errors
/// [`Error::Comm`] if the frame is truncated or the embedded data
/// length does not match the bytes actually present — an oversized
/// claim must fail before any allocation, and trailing garbage is a
/// protocol violation, not padding.
pub fn decode_store_req(buf: &[u8]) -> Result<(u64, u32, &[u8])> {
    let mut r = WireReader::new(buf);
    let id = r.u64()?;
    let disk_hint = r.u32()?;
    let len = r.u32()? as usize;
    if r.remaining() != len {
        return Err(Error::comm(format!(
            "store request claims {len} data bytes but carries {}",
            r.remaining()
        )));
    }
    Ok((id, disk_hint, &buf[buf.len() - len..]))
}

/// Encode a block-store response payload: `[id][status]` followed by
/// the assigned `[disk][slot]` (status 0) or an error string.
pub fn encode_store_resp(id: u64, reply: &StoreReply) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(id);
    match reply {
        Ok((disk, slot)) => {
            w.u8(0).u32(*disk).u32(*slot);
        }
        Err(msg) => {
            w.u8(1).string(msg);
        }
    }
    w.finish()
}

/// Decode a block-store response payload into `(id, reply)`.
///
/// # Errors
/// [`Error::Comm`] on truncation, an unknown status byte, or trailing
/// garbage after a well-formed reply.
pub fn decode_store_resp(buf: &[u8]) -> Result<(u64, StoreReply)> {
    let mut r = WireReader::new(buf);
    let id = r.u64()?;
    let reply = match r.u8()? {
        0 => Ok((r.u32()?, r.u32()?)),
        1 => Err(r.string()?),
        other => {
            return Err(Error::comm(format!("unknown store response status {other}")));
        }
    };
    if r.remaining() != 0 {
        return Err(Error::comm(format!(
            "store response carries {} trailing bytes",
            r.remaining()
        )));
    }
    Ok((id, reply))
}

// -------------------------------------------------------------------
// Counter codecs (worker -> launcher report)
// -------------------------------------------------------------------

fn phase_tag(p: Phase) -> u8 {
    match p {
        Phase::RunFormation => 0,
        Phase::MultiwaySelection => 1,
        Phase::AllToAll => 2,
        Phase::FinalMerge => 3,
    }
}

fn phase_from_tag(t: u8) -> Result<Phase> {
    match t {
        0 => Ok(Phase::RunFormation),
        1 => Ok(Phase::MultiwaySelection),
        2 => Ok(Phase::AllToAll),
        3 => Ok(Phase::FinalMerge),
        _ => Err(Error::comm(format!("unknown phase tag {t}"))),
    }
}

/// Encode one phase's stats.
pub fn encode_phase_stats(w: &mut WireWriter, phase: Phase, s: &PhaseStats) {
    w.u8(phase_tag(phase));
    w.u64(s.io.bytes_read)
        .u64(s.io.bytes_written)
        .u64(s.io.blocks_read)
        .u64(s.io.blocks_written)
        .u64(s.io.max_disk_busy_ns);
    w.u64(s.comm.bytes_sent).u64(s.comm.bytes_recv).u64(s.comm.messages);
    w.u64(s.cpu.elements_sorted)
        .u64(s.cpu.sort_work)
        .u64(s.cpu.elements_merged)
        .u64(s.cpu.merge_work)
        .u64(s.cpu.split_probes)
        .u64(s.cpu.host_wall_ns);
}

/// Decode one phase's stats.
pub fn decode_phase_stats(r: &mut WireReader<'_>) -> Result<(Phase, PhaseStats)> {
    let phase = phase_from_tag(r.u8()?)?;
    let io = IoCounters {
        bytes_read: r.u64()?,
        bytes_written: r.u64()?,
        blocks_read: r.u64()?,
        blocks_written: r.u64()?,
        max_disk_busy_ns: r.u64()?,
    };
    let comm = CommCounters { bytes_sent: r.u64()?, bytes_recv: r.u64()?, messages: r.u64()? };
    let cpu = CpuCounters {
        elements_sorted: r.u64()?,
        sort_work: r.u64()?,
        elements_merged: r.u64()?,
        merge_work: r.u64()?,
        split_probes: r.u64()?,
        host_wall_ns: r.u64()?,
    };
    Ok((phase, PhaseStats { io, comm, cpu }))
}

/// One worker's result summary, shipped back to the launcher.
///
/// A report is also the *failure* surface of a rank: a worker whose
/// sort returns `Err` (a dead peer mid-collective, a storage fault)
/// ships a report with [`RankReport::error`] set instead of unwinding —
/// the launcher then knows exactly which rank failed and why.
#[derive(Clone, Debug, PartialEq)]
pub struct RankReport {
    /// The reporting rank.
    pub rank: usize,
    /// Elements in this rank's canonical output.
    pub elems: u64,
    /// Number of runs formed (`R`, identical across ranks).
    pub runs: usize,
    /// Per-phase measured counters, in phase order.
    pub phases: Vec<(Phase, PhaseStats)>,
    /// `Some(message)` if this rank's sort failed; `None` on success.
    pub error: Option<String>,
}

impl RankReport {
    /// A structured failure report for `rank`.
    pub fn failed(rank: usize, error: impl Into<String>) -> Self {
        Self { rank, elems: 0, runs: 0, phases: Vec::new(), error: Some(error.into()) }
    }

    /// `true` if the rank completed its share of the job.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Upper bound of one encoded phase entry (tag + 13 × u64) — used to
/// sanity-bound decoded phase counts against the actual payload size.
const PHASE_WIRE_BYTES: usize = 1 + 13 * 8;

/// Encode a [`RankReport`].
pub fn encode_rank_report(rep: &RankReport) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(rep.rank as u64).u64(rep.elems).u64(rep.runs as u64);
    w.u32(rep.phases.len() as u32);
    for (phase, stats) in &rep.phases {
        encode_phase_stats(&mut w, *phase, stats);
    }
    match &rep.error {
        Some(msg) => w.bool(true).string(msg),
        None => w.bool(false),
    };
    w.finish()
}

/// Decode a [`RankReport`].
///
/// # Errors
/// [`Error::Comm`] on truncation or a phase count larger than the
/// payload could possibly hold — a garbage frame must neither panic nor
/// allocate unboundedly.
pub fn decode_rank_report(buf: &[u8]) -> Result<RankReport> {
    let mut r = WireReader::new(buf);
    let rank = r.u64()? as usize;
    let elems = r.u64()?;
    let runs = r.u64()? as usize;
    let n = r.u32()? as usize;
    if n > r.remaining() / PHASE_WIRE_BYTES {
        return Err(Error::comm(format!(
            "rank report claims {n} phases but only {} bytes follow",
            r.remaining()
        )));
    }
    let mut phases = Vec::with_capacity(n);
    for _ in 0..n {
        phases.push(decode_phase_stats(&mut r)?);
    }
    let error = if r.bool()? { Some(r.string()?) } else { None };
    Ok(RankReport { rank, elems, runs, phases, error })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = WireWriter::new();
        w.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).f64(0.5).bool(true).string("héllo").bytes(&[1, 2]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().expect("u8"), 7);
        assert_eq!(r.u32().expect("u32"), 0xDEAD_BEEF);
        assert_eq!(r.u64().expect("u64"), u64::MAX);
        assert_eq!(r.f64().expect("f64"), 0.5);
        assert!(r.bool().expect("bool"));
        assert_eq!(r.string().expect("string"), "héllo");
        assert_eq!(r.bytes().expect("bytes"), vec![1, 2]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.u32(1000); // string length, no body
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(matches!(r.string(), Err(Error::Comm(_))));
        let mut r = WireReader::new(&[1, 2]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn job_config_roundtrip() {
        let job = JobConfig {
            input: "/tmp/in.dat".to_string(),
            output: "/tmp/out.dat".to_string(),
            machine: MachineConfig::tiny(4),
            algo: AlgoConfig {
                seed: 42,
                sample_every: 7,
                replication: 1,
                pool_blocks: 32,
                par_merge_min_per_thread: 3,
                ..AlgoConfig::default()
            },
            algorithm: SortAlgo::Striped,
            read_timeout_ms: 12_345,
            trace_dir: "/tmp/trace".to_string(),
        };
        let decoded = decode_job(&encode_job(&job)).expect("decode");
        assert_eq!(decoded.input, job.input);
        assert_eq!(decoded.output, job.output);
        assert_eq!(decoded.machine, job.machine);
        assert_eq!(decoded.algo, job.algo);
        assert_eq!(decoded.algorithm, SortAlgo::Striped);
        assert_eq!(decoded.read_timeout_ms, 12_345);
        assert_eq!(decoded.trace_dir, "/tmp/trace");
    }

    #[test]
    fn progress_frames_roundtrip_and_reject_garbage() {
        for phase in Phase::ALL {
            let f = ProgressFrame { rank: 3, phase, batch: 5, batches: 9, bytes: 1 << 40 };
            assert_eq!(decode_progress(&encode_progress(&f)).expect("decode"), f);
        }
        // Unknown phase tag.
        let mut w = WireWriter::new();
        w.u32(0).u8(9).u64(0).u64(0).u64(0);
        assert!(matches!(decode_progress(&w.finish()), Err(Error::Comm(_))));
        // Trailing garbage.
        let mut buf = encode_progress(&ProgressFrame {
            rank: 0,
            phase: Phase::RunFormation,
            batch: 0,
            batches: 0,
            bytes: 0,
        });
        buf.push(0);
        assert!(matches!(decode_progress(&buf), Err(Error::Comm(_))));
        // Truncation.
        let full = encode_progress(&ProgressFrame {
            rank: 0,
            phase: Phase::FinalMerge,
            batch: 1,
            batches: 2,
            bytes: 3,
        });
        for cut in 0..full.len() {
            assert!(matches!(decode_progress(&full[..cut]), Err(Error::Comm(_))), "cut {cut}");
        }
    }

    #[test]
    fn rank_report_roundtrip() {
        let rep = RankReport {
            rank: 3,
            elems: 999,
            runs: 4,
            phases: vec![
                (
                    Phase::RunFormation,
                    PhaseStats {
                        io: IoCounters { bytes_read: 1, bytes_written: 2, ..Default::default() },
                        comm: CommCounters { bytes_sent: 3, bytes_recv: 4, messages: 5 },
                        cpu: CpuCounters { elements_sorted: 6, ..Default::default() },
                    },
                ),
                (Phase::FinalMerge, PhaseStats::default()),
            ],
            error: None,
        };
        assert_eq!(decode_rank_report(&encode_rank_report(&rep)).expect("decode"), rep);
    }

    #[test]
    fn failed_rank_report_roundtrips() {
        let rep = RankReport::failed(2, "communication error: recv from rank 1: timed out");
        assert!(!rep.is_ok());
        let decoded = decode_rank_report(&encode_rank_report(&rep)).expect("decode");
        assert_eq!(decoded, rep);
        assert_eq!(
            decoded.error.as_deref(),
            Some("communication error: recv from rank 1: timed out")
        );
    }

    #[test]
    fn oversized_phase_count_is_rejected_without_allocating() {
        // A garbage frame claiming u32::MAX phases must be a clean
        // Error::Comm — with_capacity on the claimed count would abort
        // the process on allocation failure.
        let mut w = WireWriter::new();
        w.u64(0).u64(0).u64(0).u32(u32::MAX);
        let err = decode_rank_report(&w.finish()).expect_err("oversized phase count");
        assert!(matches!(err, Error::Comm(_)), "{err}");
    }

    #[test]
    fn store_frames_roundtrip() {
        let data = vec![7u8; 256];
        let frame = encode_store_req(42, 1, &data);
        let (id, hint, body) = decode_store_req(&frame).expect("decode");
        assert_eq!((id, hint), (42, 1));
        assert_eq!(body, &data[..]);

        let ok: StoreReply = Ok((1, 99));
        assert_eq!(decode_store_resp(&encode_store_resp(7, &ok)).expect("decode"), (7, ok));
        let err: StoreReply = Err("disk full".into());
        assert_eq!(decode_store_resp(&encode_store_resp(8, &err)).expect("decode"), (8, err));
    }

    #[test]
    fn store_req_length_must_match_exactly() {
        // Oversized claim: says 100 bytes, carries 3.
        let mut w = WireWriter::new();
        w.u64(1).u32(0).u32(100);
        let mut buf = w.finish();
        buf.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(decode_store_req(&buf), Err(Error::Comm(_))));
        // Trailing garbage after a well-formed response.
        let mut buf = encode_store_resp(1, &Ok((0, 0)));
        buf.push(0xFF);
        assert!(matches!(decode_store_resp(&buf), Err(Error::Comm(_))));
        // Unknown status byte.
        let mut w = WireWriter::new();
        w.u64(1).u8(9);
        assert!(matches!(decode_store_resp(&w.finish()), Err(Error::Comm(_))));
    }

    #[test]
    fn every_phase_tag_roundtrips() {
        for p in Phase::ALL {
            assert_eq!(phase_from_tag(phase_tag(p)).expect("tag"), p);
        }
        assert!(phase_from_tag(9).is_err());
    }

    mod codec_error_paths {
        //! Satellite of the fallible-collectives PR: the wire codec's
        //! error paths. Truncated, oversized, and garbage frames must
        //! decode to `Error::Comm` — never panic, never abort.
        use super::super::*;
        use proptest::prelude::*;

        fn job() -> JobConfig {
            JobConfig {
                input: "/tmp/in".into(),
                output: "/tmp/out".into(),
                machine: MachineConfig {
                    pes: 3,
                    disks_per_pe: 2,
                    block_bytes: 256,
                    mem_bytes_per_pe: 4096,
                    cores_per_pe: 1,
                },
                algo: AlgoConfig::default(),
                algorithm: SortAlgo::default(),
                read_timeout_ms: 1234,
                trace_dir: "/tmp/trace".into(),
            }
        }

        fn report() -> RankReport {
            RankReport {
                rank: 1,
                elems: 77,
                runs: 2,
                phases: vec![
                    (Phase::RunFormation, PhaseStats::default()),
                    (Phase::AllToAll, PhaseStats::default()),
                ],
                error: Some("boom".into()),
            }
        }

        proptest! {
            /// Arbitrary byte soup: decoders return, they never panic.
            #[test]
            fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
                let _ = decode_job(&bytes);
                let _ = decode_rank_report(&bytes);
                let mut r = WireReader::new(&bytes);
                let _ = r.string();
                let mut r = WireReader::new(&bytes);
                let _ = r.bytes();
                let mut r = WireReader::new(&bytes);
                while r.u64().is_ok() {}
            }

            /// Every strict prefix of a valid encoding (a truncated
            /// frame) is a clean `Error::Comm`.
            #[test]
            fn truncated_job_is_comm_error(cut in 0usize..10_000) {
                let full = encode_job(&job());
                let cut = cut % full.len(); // strict prefix
                let err = decode_job(&full[..cut]).expect_err("truncated");
                prop_assert!(matches!(err, Error::Comm(_)), "{err}");
            }

            #[test]
            fn truncated_report_is_comm_error(cut in 0usize..10_000) {
                let full = encode_rank_report(&report());
                let cut = cut % full.len(); // strict prefix
                let err = decode_rank_report(&full[..cut]).expect_err("truncated");
                prop_assert!(matches!(err, Error::Comm(_)), "{err}");
            }

            /// Oversized length prefixes (string/bytes/phase counts that
            /// claim more than the payload holds) are `Error::Comm`.
            #[test]
            fn oversized_length_prefix_is_comm_error(claim in 1u32..=u32::MAX, tail in 0usize..32) {
                let mut w = WireWriter::new();
                w.u32(claim);
                let mut buf = w.finish();
                let tail = tail.min(claim as usize - 1);
                buf.extend(std::iter::repeat_n(0u8, tail));
                let mut r = WireReader::new(&buf);
                let err = r.string().expect_err("oversized claim");
                prop_assert!(matches!(err, Error::Comm(_)), "{err}");
            }

            /// Flipping any single byte of a valid report either decodes
            /// to *some* report or fails cleanly — never a panic.
            #[test]
            fn bitflips_never_panic(pos in 0usize..10_000, flip in 1u8..=255) {
                let mut buf = encode_rank_report(&report());
                let pos = pos % buf.len();
                buf[pos] ^= flip;
                let _ = decode_rank_report(&buf);
            }
        }
    }

    mod store_frame_paths {
        //! Satellite of the write-capable block service PR: error paths
        //! of the store frames, matching the fetch-frame suite above.
        //! Truncated, oversized, and garbage frames must decode to
        //! `Error::Comm` — never panic, never allocate on a claimed
        //! (rather than actual) length.
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary byte soup: the store decoders return, they
            /// never panic.
            #[test]
            fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..256)) {
                let _ = decode_store_req(&bytes);
                let _ = decode_store_resp(&bytes);
            }

            /// Round trip over arbitrary ids, hints and payloads.
            #[test]
            fn store_req_roundtrips(
                id in 0u64..=u64::MAX,
                hint in 0u32..=u32::MAX,
                data in prop::collection::vec(0u8..=255, 0..512),
            ) {
                let frame = encode_store_req(id, hint, &data);
                let (i, h, d) = decode_store_req(&frame).expect("roundtrip");
                prop_assert_eq!((i, h, d), (id, hint, &data[..]));
            }

            /// Every strict prefix of a valid request is `Error::Comm`
            /// (the trailing-data length check also catches cuts inside
            /// the payload).
            #[test]
            fn truncated_store_req_is_comm_error(cut in 0usize..10_000) {
                let full = encode_store_req(9, 2, &[5u8; 64]);
                let cut = cut % full.len(); // strict prefix
                let err = decode_store_req(&full[..cut]).expect_err("truncated");
                prop_assert!(matches!(err, Error::Comm(_)), "{err}");
            }

            /// Every strict prefix of a valid response is `Error::Comm`.
            #[test]
            fn truncated_store_resp_is_comm_error(cut in 0usize..10_000, ok in 0u8..=1) {
                let reply: StoreReply =
                    if ok == 1 { Ok((3, 77)) } else { Err("backend failed".into()) };
                let full = encode_store_resp(11, &reply);
                let cut = cut % full.len(); // strict prefix
                let err = decode_store_resp(&full[..cut]).expect_err("truncated");
                prop_assert!(matches!(err, Error::Comm(_)), "{err}");
            }

            /// A request whose length field claims more than the frame
            /// carries is a capacity bomb — it must be a clean
            /// `Error::Comm` before any allocation of the claimed size.
            #[test]
            fn oversized_store_claim_is_comm_error(claim in 1u32..=u32::MAX, carry in 0usize..64) {
                let mut w = WireWriter::new();
                w.u64(0).u32(0).u32(claim);
                let mut buf = w.finish();
                let carry = carry.min(claim as usize - 1);
                buf.extend(std::iter::repeat_n(0u8, carry));
                let err = decode_store_req(&buf).expect_err("oversized claim");
                prop_assert!(matches!(err, Error::Comm(_)), "{err}");
            }

            /// Flipping any single byte of a valid frame either decodes
            /// to *something* or fails cleanly — never a panic.
            #[test]
            fn store_bitflips_never_panic(pos in 0usize..10_000, flip in 1u8..=255) {
                let mut req = encode_store_req(3, 1, &[9u8; 32]);
                let pos_req = pos % req.len();
                req[pos_req] ^= flip;
                let _ = decode_store_req(&req);
                let mut resp = encode_store_resp(3, &Err("x".into()));
                let pos_resp = pos % resp.len();
                resp[pos_resp] ^= flip;
                let _ = decode_store_resp(&resp);
            }
        }
    }
}
