//! Chunked all-to-all: the paper's `MPI_Alltoallv` re-implementation.
//!
//! "Unfortunately, in MPI, data volumes are specified using 32-bit
//! signed integers. This means that no data volume greater than 2 GiB
//! can be passed to MPI routines. We have re-implemented
//! `MPI_Alltoallv` to break this barrier." (Section V)
//!
//! [`chunked_alltoallv`] splits every pairwise message into chunks of
//! at most `limit` bytes, runs one plain alltoallv per chunk round, and
//! reassembles on the receiver. The default limit is the real MPI
//! `i32` barrier; tests use tiny limits to exercise multi-round
//! reassembly.

use crate::comm::Communicator;
use demsort_types::Result;

/// The 2 GiB (`i32::MAX`) volume limit of classic MPI interfaces.
pub const MPI_VOLUME_LIMIT: usize = i32::MAX as usize;

/// All-to-all of arbitrarily large messages by splitting into rounds of
/// at most `limit` bytes per pairwise message.
///
/// # Errors
/// [`Error::Comm`](demsort_types::Error) if a peer dies or goes silent
/// in any round (the allreduce agreeing on the round count included) —
/// every surviving rank gets the error, none hangs.
pub fn chunked_alltoallv(
    comm: &Communicator,
    msgs: Vec<Vec<u8>>,
    limit: usize,
) -> Result<Vec<Vec<u8>>> {
    assert!(limit > 0, "chunk limit must be positive");
    let p = comm.size();
    assert_eq!(msgs.len(), p);

    // Everyone must agree on the number of rounds: the global maximum
    // pairwise message decides.
    let local_max = msgs.iter().map(Vec::len).max().unwrap_or(0) as u64;
    let global_max = comm.allreduce_max(local_max)? as usize;
    let rounds = global_max.div_ceil(limit).max(1);

    let mut out: Vec<Vec<u8>> = vec![Vec::new(); p];
    let mut offsets = vec![0usize; p];
    for _ in 0..rounds {
        let round_msgs: Vec<Vec<u8>> = msgs
            .iter()
            .enumerate()
            .map(|(j, m)| {
                let start = offsets[j].min(m.len());
                let end = (start + limit).min(m.len());
                m[start..end].to_vec()
            })
            .collect();
        for (j, m) in round_msgs.iter().enumerate() {
            offsets[j] += m.len();
        }
        let received = comm.alltoallv(round_msgs)?;
        for (src, part) in received.into_iter().enumerate() {
            out[src].extend_from_slice(&part);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::run_cluster;

    fn payload(src: usize, dst: usize, len: usize) -> Vec<u8> {
        (0..len).map(|i| (src * 31 + dst * 7 + i) as u8).collect()
    }

    #[test]
    fn reassembles_across_many_rounds() {
        let p = 4;
        for limit in [1usize, 3, 16, 1000] {
            let results = run_cluster(p, move |c| {
                let msgs: Vec<Vec<u8>> =
                    (0..p).map(|j| payload(c.rank(), j, 10 + 13 * j)).collect();
                chunked_alltoallv(&c, msgs, limit).expect("alltoallv")
            });
            for (me, r) in results.into_iter().enumerate() {
                for (src, m) in r.into_iter().enumerate() {
                    assert_eq!(m, payload(src, me, 10 + 13 * me), "limit {limit}");
                }
            }
        }
    }

    #[test]
    fn empty_and_skewed_messages() {
        let p = 3;
        let results = run_cluster(p, move |c| {
            // only rank 0 sends anything, and only to rank 2
            let mut msgs = vec![Vec::new(); p];
            if c.rank() == 0 {
                msgs[2] = vec![5u8; 100];
            }
            chunked_alltoallv(&c, msgs, 7).expect("alltoallv")
        });
        assert!(results[0].iter().all(|m| m.is_empty()));
        assert!(results[1].iter().all(|m| m.is_empty()));
        assert_eq!(results[2][0], vec![5u8; 100]);
        assert!(results[2][1].is_empty());
        assert!(results[2][2].is_empty());
    }

    #[test]
    fn all_empty_still_one_round() {
        let results =
            run_cluster(2, |c| chunked_alltoallv(&c, vec![Vec::new(); 2], 8).expect("alltoallv"));
        for r in results {
            assert!(r.iter().all(|m| m.is_empty()));
        }
    }

    #[test]
    fn dead_peer_fails_surviving_ranks() {
        // Rank 2 exits before the exchange: the survivors' collective
        // must return Error::Comm, not panic and not hang.
        let p = 3;
        let results = run_cluster(p, move |c| {
            if c.rank() == 2 {
                return Ok(Vec::new());
            }
            let msgs = vec![vec![1u8; 32]; p];
            chunked_alltoallv(&c, msgs, 8)
        });
        assert!(results[2].is_ok());
        for r in &results[..2] {
            let err = r.as_ref().expect_err("survivors must see the failure");
            assert!(matches!(err, demsort_types::Error::Comm(_)), "{err}");
        }
    }

    #[test]
    fn volume_limit_boundary_roundtrips_on_both_transports() {
        // Off-by-one guard at the volume limit: a payload of exactly
        // `limit` bytes must fit one round; `limit + 1` must split into
        // two and reassemble byte-exactly. Run the identical job over
        // the in-process mesh and the TCP loopback mesh (the real MPI
        // limit is `i32::MAX`; the chunking logic is size-agnostic, so
        // a small limit exercises the same boundary arithmetic).
        let p = 3;
        let limit = 1usize << 12;
        for extra in [0usize, 1] {
            let job = move |c: crate::Communicator| {
                // rank 0 sends a boundary-sized payload to rank 2;
                // everything else stays small/empty.
                let mut msgs = vec![Vec::new(); p];
                if c.rank() == 0 {
                    msgs[2] = payload(0, 2, limit + extra);
                    msgs[1] = vec![9u8; 3];
                }
                let before = c.counters().messages;
                let out = chunked_alltoallv(&c, msgs, limit).expect("alltoallv");
                (out, c.counters().messages - before)
            };
            let local = crate::cluster::run_cluster(p, job);
            let tcp = crate::cluster::run_cluster_tcp(p, job);
            for (transport, results) in [("local", &local), ("tcp", &tcp)] {
                let (out2, _) = &results[2];
                assert_eq!(
                    out2[0],
                    payload(0, 2, limit + extra),
                    "{transport}: limit+{extra} payload must reassemble"
                );
                assert!(out2[1].is_empty() && out2[2].is_empty());
                let (out1, _) = &results[1];
                assert_eq!(out1[0], vec![9u8; 3], "{transport}: small payload rides along");
            }
            // At the limit: one alltoall round; one byte over: two.
            // Each round costs every PE P-1 sends plus the allreduce's
            // ring traffic — identical across transports.
            let rounds_msgs_local = local[0].1;
            let rounds_msgs_tcp = tcp[0].1;
            assert_eq!(
                rounds_msgs_local, rounds_msgs_tcp,
                "message counts must be transport-independent (extra {extra})"
            );
            let expect_rounds = 1 + extra as u64;
            // allgather_u64 ring: P-1 sends per PE; each alltoallv
            // round: P-1 sends per PE.
            assert_eq!(
                rounds_msgs_local,
                (p as u64 - 1) * (1 + expect_rounds),
                "round count off-by-one at the volume limit (extra {extra})"
            );
        }
    }
}
