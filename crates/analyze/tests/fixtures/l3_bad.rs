//! L3 fixture: undocumented `unsafe` (one site justified, one not).

pub fn undocumented(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

pub fn documented(v: &[u8]) -> u8 {
    debug_assert!(!v.is_empty());
    // SAFETY: the debug_assert above pins the caller contract.
    unsafe { *v.get_unchecked(0) }
}
