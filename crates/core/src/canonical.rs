//! The CANONICALMERGESORT driver (Section IV, Figure 1).
//!
//! Orchestrates the four phases on each PE and accounts every resource:
//!
//! 1. **Run formation** ([`crate::runform`]) — R global runs, sorted in
//!    parallel, slices written locally, randomized block choice,
//!    samples collected, I/O overlapped.
//! 2. **Multiway selection** ([`crate::extselect`]) — PE `i` finds the
//!    exact global rank `⌊i·N/P⌋` partition over all runs; splitter
//!    positions are exchanged.
//! 3. **All-to-all** ([`crate::alltoall`]) — the memory-bounded
//!    external redistribution; data already in place stays put.
//! 4. **Final merge** ([`crate::localmerge`]) — the local `R`-way
//!    merge into the canonical output.
//!
//! If everything fits into the cumulative memory (`R = 1`), the run
//! formation output *is* the final output and phases 2–4 are skipped
//! ("the sort is merely internal and only 2 I/Os per block of elements
//! are needed").

use crate::alltoall::{exchange_splitters, external_alltoall};
use crate::ctx::{assemble_report, ClusterStorage, PhaseRecorder};
use crate::extselect::{select_rank_external, SelectionStats};
use crate::localmerge::final_merge;
use crate::recio::FinishedRun;
use crate::rundir::build_directory;
use crate::runform::{form_runs, ingest_input, LocalInput};
use demsort_net::{run_cluster, Communicator};
use demsort_types::trace::TraceEv;
use demsort_types::{ranks, Phase, PhaseStats, Record, Result, SortConfig};
use std::sync::Arc;

/// Per-PE result of a canonical mergesort.
pub struct PeOutcome<R: Record> {
    /// The PE's final output: the elements of global ranks
    /// `⌊i·N/P⌋ .. ⌊(i+1)·N/P⌋`, sorted, striped over its local disks.
    pub output: FinishedRun<R>,
    /// Per-phase measured counters.
    pub phases: Vec<(Phase, PhaseStats)>,
    /// Probe statistics of the multiway selection.
    pub selection: SelectionStats,
    /// Number of suboperations the all-to-all used (`k`).
    pub alltoall_subops: usize,
    /// Number of distinct PEs data was received from (`P'`).
    pub sources_seen: usize,
    /// Number of runs (`R`).
    pub runs: usize,
}

/// Run CANONICALMERGESORT on one PE (collective call).
///
/// `input` must already reside on `st`'s disks (see
/// [`crate::runform::ingest_input`]); `cores` is the intra-PE
/// parallelism (Section IV-E "Hierarchical Parallelism").
pub fn canonical_mergesort<R: Record + Ord>(
    comm: &Communicator,
    storage: &ClusterStorage,
    cfg: &SortConfig,
    input: LocalInput,
    cores: usize,
) -> Result<PeOutcome<R>> {
    let me = comm.rank();
    let st = storage.pe(me);
    let mut rec = PhaseRecorder::new(me, st.counters(), comm.counters());
    // Phase spans delimit the same intervals the recorder attributes
    // counters to, so the journal and the phase table line up.
    let tr = comm.tracer().clone();
    let pev = |p: Phase| TraceEv::Phase { phase: p };

    // ---- Phase 1: run formation ----
    tr.progress(Phase::RunFormation, 0, 1);
    let span = tr.begin(pev(Phase::RunFormation));
    let formed = form_runs::<R>(comm, st, cfg, input, cores)?;
    rec.add_cpu(formed.cpu);
    let dir = build_directory(comm, formed.local)?;
    let runs = dir.num_runs();
    rec.finish_phase(Phase::RunFormation, st.counters(), comm.counters());
    tr.end(span, pev(Phase::RunFormation));

    // ---- Single-run shortcut: the sort was internal ----
    if runs == 1 {
        let output = dir.local.into_iter().next().expect("one run");
        return Ok(PeOutcome {
            output,
            phases: rec.into_stats(),
            selection: SelectionStats::default(),
            alltoall_subops: 0,
            sources_seen: 0,
            runs,
        });
    }

    // ---- Phase 2a: multiway selection ----
    tr.progress(Phase::MultiwaySelection, 0, 1);
    let span = tr.begin(pev(Phase::MultiwaySelection));
    let n = dir.total_elems();
    let my_rank_boundary = ranks::owned_range(me, comm.size(), n).start;
    let (splitters, sel_stats) =
        select_rank_external(storage, me, &dir, my_rank_boundary, &cfg.algo)?;
    rec.add_comm(sel_stats.comm());
    let all_splitters = exchange_splitters(comm, &splitters)?;
    rec.finish_phase(Phase::MultiwaySelection, st.counters(), comm.counters());
    tr.end(span, pev(Phase::MultiwaySelection));

    // ---- Phase 2b: external all-to-all ----
    tr.progress(Phase::AllToAll, 0, 1);
    let span = tr.begin(pev(Phase::AllToAll));
    let outcome = external_alltoall::<R>(comm, st, cfg, &dir, &all_splitters)?;
    rec.finish_phase(Phase::AllToAll, st.counters(), comm.counters());
    tr.end(span, pev(Phase::AllToAll));

    // ---- Phase 3: final local merge ----
    tr.progress(Phase::FinalMerge, 0, 1);
    let span = tr.begin(pev(Phase::FinalMerge));
    let (output, merge_cpu) = final_merge::<R>(st, outcome.merge_inputs, cores)?;
    rec.add_cpu(merge_cpu);
    for b in outcome.stragglers {
        st.free_block(b);
    }
    rec.finish_phase(Phase::FinalMerge, st.counters(), comm.counters());
    tr.end(span, pev(Phase::FinalMerge));

    Ok(PeOutcome {
        output,
        phases: rec.into_stats(),
        selection: sel_stats,
        alltoall_subops: outcome.subops,
        sources_seen: outcome.sources_seen,
        runs,
    })
}

/// Whole-cluster result of [`sort_cluster`].
pub struct ClusterOutcome<R: Record> {
    /// Per-PE outcomes, indexed by rank.
    pub per_pe: Vec<PeOutcome<R>>,
    /// The aggregated measured report (input for the cost model).
    pub report: demsort_types::SortReport,
    /// The cluster storage (outputs remain readable through it).
    pub storage: Arc<ClusterStorage>,
}

/// Convenience driver: spin up `cfg.machine.pes` PE threads, generate
/// and ingest each PE's input via `gen(pe, p)`, run CANONICALMERGESORT,
/// and aggregate the report.
///
/// Input generation and ingest are *setup* — their I/O happens before
/// the measured baseline, like the pre-loaded input files of the
/// paper's experiments.
pub fn sort_cluster<R, G>(cfg: &SortConfig, gen: G) -> Result<ClusterOutcome<R>>
where
    R: Record + Ord,
    G: Fn(usize, usize) -> Vec<R> + Send + Sync,
{
    let p = cfg.machine.pes;
    let storage =
        ClusterStorage::new_mem_sized(&cfg.machine, cfg.algo.effective_pool_blocks(&cfg.machine));
    let storage_ref = &storage;
    let gen = &gen;
    let results: Vec<Result<PeOutcome<R>>> = run_cluster(p, move |comm| {
        let st = storage_ref.pe(comm.rank());
        let recs = gen(comm.rank(), p);
        let input = ingest_input(st, &recs)?;
        canonical_mergesort::<R>(&comm, storage_ref, cfg, input, cfg.machine.cores_per_pe)
    });
    let mut per_pe = Vec::with_capacity(p);
    for r in results {
        per_pe.push(r?);
    }
    let elements: u64 = per_pe.iter().map(|o| o.output.elems).sum();
    let runs = per_pe.first().map_or(0, |o| o.runs);
    let report = assemble_report(
        cfg,
        elements,
        R::BYTES,
        runs,
        per_pe.iter().map(|o| o.phases.clone()).collect(),
    );
    Ok(ClusterOutcome { per_pe, report, storage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recio::read_records;
    use demsort_types::{AlgoConfig, Element16, MachineConfig};
    use demsort_workloads::{checksum_elements, generate_all, generate_pe_input, InputSpec};

    fn config(pes: usize) -> SortConfig {
        SortConfig::new(MachineConfig::tiny(pes), AlgoConfig::default()).expect("valid")
    }

    /// End-to-end check: output is the canonical distributed sort of
    /// the input (sizes, order, permutation).
    fn check_sort(cfg: &SortConfig, spec: InputSpec, local_n: usize) -> ClusterOutcome<Element16> {
        let p = cfg.machine.pes;
        let outcome =
            sort_cluster::<Element16, _>(cfg, |pe, p| generate_pe_input(spec, 77, pe, p, local_n))
                .expect("sort");

        let mut reference = generate_all(spec, 77, p, local_n);
        let checksum_in = checksum_elements(&reference);
        reference.sort_unstable();

        let n = reference.len() as u64;
        let mut concat = Vec::with_capacity(reference.len());
        for (pe, o) in outcome.per_pe.iter().enumerate() {
            assert_eq!(
                o.output.elems,
                ranks::owned_len(pe, p, n),
                "canonical size on PE {pe} ({spec:?})"
            );
            let recs =
                read_records::<Element16>(outcome.storage.pe(pe), &o.output.run, o.output.elems)
                    .expect("read output");
            concat.extend(recs);
        }
        // Key sequence must match the reference exactly (equal keys may
        // come out in any payload order — the sort is by key with PE
        // tie-breaks); the multiset of records must be untouched.
        let keys: Vec<u64> = concat.iter().map(|e| e.key).collect();
        let ref_keys: Vec<u64> = reference.iter().map(|e| e.key).collect();
        assert_eq!(keys, ref_keys, "global key order ({spec:?}, P={p})");
        assert_eq!(checksum_elements(&concat), checksum_in, "permutation ({spec:?})");
        outcome
    }

    #[test]
    fn sorts_uniform_multiple_cluster_sizes() {
        for p in [1, 2, 4] {
            check_sort(&config(p), InputSpec::Uniform, 700);
        }
    }

    #[test]
    fn sorts_every_adversarial_input_class() {
        let cfg = config(3);
        for spec in [
            InputSpec::Sorted,
            InputSpec::ReverseSorted,
            InputSpec::SkewedToOne,
            InputSpec::Constant,
            InputSpec::Banded { block_elems: 16 },
        ] {
            check_sort(&cfg, spec, 600);
        }
    }

    #[test]
    fn single_run_shortcut_is_internal_sort() {
        let cfg = config(3);
        let outcome = check_sort(&cfg, InputSpec::Uniform, 100); // fits in memory
        assert_eq!(outcome.per_pe[0].runs, 1);
        // Only run formation happened.
        for o in &outcome.per_pe {
            assert_eq!(o.phases.len(), 1);
            assert_eq!(o.phases[0].0, Phase::RunFormation);
        }
        // Two I/Os per element: read input once, write output once.
        let io_over_n = outcome.report.io_volume_over_n();
        assert!((1.9..=2.3).contains(&io_over_n), "internal sort I/O ratio {io_over_n}");
    }

    #[test]
    fn two_pass_io_volume_for_external_inputs() {
        // 700 elems/PE over 256-elem runs → R = 3: a genuine external
        // sort. Total I/O must stay near 4N (two passes) + the small
        // all-to-all overhead (random input moves ~(P-1)/P of data ≈
        // 0.75N read + written once more... but only moved data counts:
        // I/O = 4N + 2·moved_fraction·N bounded by 6N).
        let cfg = config(4);
        let outcome = check_sort(&cfg, InputSpec::Uniform, 700);
        let io_over_n = outcome.report.io_volume_over_n();
        assert!((3.9..=6.5).contains(&io_over_n), "two-pass-ish I/O ratio {io_over_n}");
        assert!(outcome.per_pe[0].runs >= 2, "external case must have several runs");
    }

    #[test]
    fn presorted_input_moves_almost_nothing() {
        let cfg = config(4);
        let outcome = check_sort(&cfg, InputSpec::Sorted, 700);
        // All-to-all volume (Figure 5's metric): bytes through the
        // all-to-all phase relative to input bytes.
        let n_bytes = outcome.report.total_bytes() as f64;
        let a2a_io = outcome.report.phase_total(Phase::AllToAll, |s| s.io.bytes_total()) as f64;
        assert!(
            a2a_io / n_bytes < 0.1,
            "presorted input must not move data: ratio {}",
            a2a_io / n_bytes
        );
    }

    #[test]
    fn randomization_reduces_alltoall_volume_on_worst_case() {
        // The Figure 4 vs Figure 6 contrast: banded worst-case input
        // with and without randomized block assignment.
        let p = 4;
        let spec = InputSpec::Banded { block_elems: 16 };
        let volume = |randomize: bool| {
            let algo = AlgoConfig { randomize, ..AlgoConfig::default() };
            let cfg = SortConfig::new(MachineConfig::tiny(p), algo).expect("valid");
            let outcome = check_sort(&cfg, spec, 1024);
            outcome.report.phase_total(Phase::AllToAll, |s| s.io.bytes_total()) as f64
                / outcome.report.total_bytes() as f64
        };
        let with_rand = volume(true);
        let without = volume(false);
        assert!(
            with_rand < without * 0.7,
            "randomization must cut all-to-all I/O: {with_rand:.3} vs {without:.3}"
        );
    }

    #[test]
    fn communication_volume_is_about_one_pass() {
        // CANONICALMERGESORT's headline: communication volume N + o(N)
        // — the data crosses the network (at most) once, in the
        // internal sort of run formation; redistribution moves little
        // and the selection/directory control traffic is o(N). The
        // o(N) terms only vanish when runs are much larger than the
        // per-round control messages, so this test uses a mid-size
        // machine (1 KiB blocks, 512 KiB memory/PE) instead of `tiny`.
        let machine = MachineConfig {
            pes: 4,
            disks_per_pe: 2,
            block_bytes: 1024,
            mem_bytes_per_pe: 1024 * 512,
            cores_per_pe: 1,
        };
        let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid");
        // 100k elems/PE → R = 4 runs of 32k elems/PE.
        let outcome = check_sort(&cfg, InputSpec::Uniform, 100_000);
        assert!(outcome.per_pe[0].runs >= 2, "external case");
        let comm_over_n = outcome.report.comm_volume_over_n();
        // (P-1)/P = 0.75 of the data moves in run formation's internal
        // sort; everything else must be small.
        assert!(comm_over_n < 1.1, "communication must stay near one pass: {comm_over_n:.2}");
    }

    #[test]
    fn ragged_input_sizes() {
        let cfg = config(3);
        check_sort(&cfg, InputSpec::Uniform, 333);
    }

    #[test]
    fn empty_input_cluster() {
        let cfg = config(2);
        check_sort(&cfg, InputSpec::Uniform, 0);
    }
}
