//! `gensort` — generate a file of SortBenchmark records (100 bytes,
//! 10-byte key), our stand-in for the official tool.
//!
//! ```text
//! gensort [-s SEED] [-b START] COUNT FILE
//! ```

use demsort_types::Record as _;
use demsort_types::Record100;
use demsort_workloads::gensort_records;
use std::io::Write;

fn main() {
    let mut seed = 0u64;
    let mut start = 0u64;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-s" => seed = args.next().expect("-s SEED").parse().expect("seed"),
            "-b" => start = args.next().expect("-b START").parse().expect("start"),
            "--help" | "-h" => {
                println!("gensort [-s SEED] [-b START] COUNT FILE");
                return;
            }
            other => positional.push(other.to_string()),
        }
    }
    let [count, file] = positional.as_slice() else {
        eprintln!("usage: gensort [-s SEED] [-b START] COUNT FILE");
        std::process::exit(2);
    };
    let count: usize = count.parse().expect("COUNT must be an integer");

    let out = std::fs::File::create(file).expect("create output file");
    let mut out = std::io::BufWriter::new(out);
    let mut buf = vec![0u8; Record100::BYTES];
    const CHUNK: usize = 1 << 16;
    let mut written = 0usize;
    while written < count {
        let n = CHUNK.min(count - written);
        for rec in gensort_records(seed, start + written as u64, n) {
            rec.encode(&mut buf);
            out.write_all(&buf).expect("write record");
        }
        written += n;
    }
    out.flush().expect("flush");
    eprintln!("wrote {count} records ({} bytes) to {file}", count * Record100::BYTES);
}
