//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the group/bench/iter surface the suite's benches use,
//! with plain wall-clock timing and a one-line-per-benchmark report.
//! No statistics, warm-up calibration, or HTML output — the point is
//! that `cargo bench` compiles and produces usable numbers offline;
//! swap in real criterion for publication-grade measurements.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Throughput annotation; reported as a rate alongside the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one untimed warm-up call, then `sample_size` timed
    /// iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.sample_size as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.0} {unit}/s")
    }
}

/// A named group of related benchmarks sharing throughput/sample
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher { mean_ns: 0.0, sample_size: self.sample_size };
        f(&mut b);
        let mut line = format!("{}/{id}: {}/iter", self.name, human_time(b.mean_ns));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = count as f64 / (b.mean_ns / 1e9);
            line.push_str(&format!(" ({})", human_rate(per_sec, unit)));
        }
        println!("{line}");
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.to_string();
        let mut f = f;
        self.run_one(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.id.clone();
        self.run_one(&name, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver, one per `criterion_group!`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Tiny by criterion standards: these are smoke-scale offline
        // runs, not statistical measurements.
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None, sample_size }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = id.to_string();
        let mut g = self.benchmark_group(name);
        g.bench_function("base", f);
        g.finish();
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching criterion's own `black_box`.
pub use std::hint::black_box;

#[allow(dead_code)]
fn _sleep_is_measurable() {
    // Compile-time use of Duration to keep the import honest if the
    // timing code changes.
    let _ = Duration::from_nanos(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(100));
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            runs += 1;
        });
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("cold", 8).id, "cold/8");
        assert_eq!(BenchmarkId::from_parameter("random").id, "random");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_time(12.0), "12 ns");
        assert_eq!(human_time(1_500.0), "1.500 µs");
        assert_eq!(human_time(2_000_000.0), "2.000 ms");
        assert_eq!(human_time(3e9), "3.000 s");
        assert_eq!(human_rate(2.5e9, "B"), "2.500 GB/s");
    }
}
