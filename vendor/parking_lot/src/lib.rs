//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Re-implements the subset the demsort suite uses on top of
//! `std::sync`, with parking_lot's signatures: locking returns guards
//! directly (poisoning is swallowed — a panicking thread must not turn
//! every later lock into a second, unrelated failure), and
//! [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming it.

use std::ops::{Deref, DerefMut};
use std::sync;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Guard returned by [`Mutex::lock`]. The inner `Option` is only ever
/// `None` transiently inside [`Condvar::wait`], which takes the std
/// guard out and puts it back.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Atomically release the lock and block until notified; the guard
    /// is re-acquired before returning (spurious wakeups possible, as
    /// with parking_lot).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present on entry to wait");
        let inner = self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock; `read()`/`write()` return std guards directly.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().expect("notifier");
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
