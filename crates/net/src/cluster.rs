//! Cluster runtime: spawn `P` PE threads wired into a full channel
//! mesh.
//!
//! This substitutes for the paper's 200-node InfiniBand cluster plus
//! MVAPICH: each PE is an OS thread running the same SPMD function with
//! its own [`Communicator`] endpoint. Panics in any PE propagate to the
//! caller after all PEs have been joined, so test failures surface
//! cleanly.

use crate::comm::Communicator;
use crossbeam::channel::unbounded;

/// Build the `P × P` channel mesh and hand each PE its endpoint.
#[allow(clippy::needless_range_loop)] // (src, dst) indices mirror the mesh
pub fn build_mesh(p: usize) -> Vec<Communicator> {
    assert!(p > 0, "cluster needs at least one PE");
    // senders[src][dst] / receivers[dst][src]
    let mut senders: Vec<Vec<_>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    let mut inboxes: Vec<Vec<_>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for dst in 0..p {
        for src in 0..p {
            let (tx, rx) = unbounded::<Vec<u8>>();
            senders[src].push(tx);
            inboxes[dst].push(rx);
        }
    }
    // senders[src] currently indexed by dst in order; inboxes[dst] by src.
    senders
        .into_iter()
        .zip(inboxes)
        .enumerate()
        .map(|(rank, (out, inbox))| Communicator::new(rank, p, out, inbox))
        .collect()
}

/// Run `f` as an SPMD program on `p` PE threads; returns the per-rank
/// results in rank order.
///
/// `f` receives the PE's [`Communicator`]. If any PE panics, this
/// function panics after joining all threads (mirroring an MPI job
/// abort).
pub fn run_cluster<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Communicator) -> T + Send + Sync,
{
    let comms = build_mesh(p);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                std::thread::Builder::new()
                    .name(format!("demsort-pe-{rank}"))
                    .stack_size(8 << 20)
                    .spawn_scoped(s, move || f(comm))
                    .expect("spawn PE thread")
            })
            .collect();
        let mut results = Vec::with_capacity(p);
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(v) => results.push(v),
                Err(e) => panic_payload = Some(e),
            }
        }
        if let Some(e) = panic_payload {
            std::panic::resume_unwind(e);
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let results = run_cluster(7, |c| c.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn single_pe_cluster_works() {
        let results = run_cluster(1, |c| {
            c.barrier();
            assert_eq!(c.size(), 1);
            c.allreduce_sum(5)
        });
        assert_eq!(results, vec![5]);
    }

    #[test]
    #[should_panic(expected = "pe 3 exploded")]
    fn pe_panic_propagates() {
        run_cluster(5, |c| {
            if c.rank() == 3 {
                panic!("pe 3 exploded");
            }
            // Others may block on a barrier that never completes if we
            // are unlucky; avoid that by not communicating here.
        });
    }

    #[test]
    fn large_cluster_spawns() {
        let results = run_cluster(64, |c| {
            c.barrier();
            c.allreduce_sum(1)
        });
        assert!(results.iter().all(|&x| x == 64));
    }
}
