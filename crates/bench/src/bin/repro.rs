//! `repro` — regenerate every figure and table of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--smoke] [--pes P1,P2,...] [--out DIR]
//!
//! EXPERIMENT: fig2 | fig3 | fig4 | fig5 | fig6 | sortbench |
//!             ablate-selection | ablate-overlap |
//!             striped-vs-canonical | baseline-skew | bench-striped |
//!             all (default)
//!
//! --smoke     run at the fast smoke scale (CI-sized, same shapes)
//! --pes       override the cluster-size sweep
//! --out DIR   CSV output directory (default: results/)
//! ```

use demsort_bench::experiments::{self, PAPER_PES};
use demsort_bench::table::Table;
use demsort_bench::ExpScale;
use std::path::PathBuf;

const USAGE: &str = "repro [EXPERIMENT] [--smoke] [--pes P1,P2,...] [--records N] [--out DIR]

EXPERIMENT: fig2 | fig3 | fig4 | fig5 | fig6 | sortbench |
            ablate-selection | ablate-overlap | ablate-runlength |
            ablate-prefetch | striped-vs-canonical | baseline-skew |
            bench-striped | all (default)

--smoke      run at the fast smoke scale (CI-sized, same shapes)
--pes        override the cluster-size sweep
--records N  bench-striped: total records to sort (default: the scale's
             data volume; without --smoke the default is doubled so the
             final merge runs long enough to time meaningfully)
--out DIR    CSV output directory (default: results/)";

struct Args {
    experiment: String,
    scale: ExpScale,
    pes_list: Vec<usize>,
    fig3_pes: usize,
    single_pes: usize,
    records: Option<u64>,
    smoke: bool,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut experiment = "all".to_string();
    let mut scale = ExpScale::default();
    let mut pes_list: Vec<usize> = PAPER_PES.to_vec();
    let mut pes_overridden = false;
    let mut out = PathBuf::from("results");
    let mut smoke = false;
    let mut records: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => {
                smoke = true;
                scale = ExpScale::smoke();
            }
            "--pes" => {
                let v = args.next().expect("--pes needs a comma-separated list");
                pes_list = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("--pes values must be integers"))
                    .collect();
                pes_overridden = true;
            }
            "--records" => {
                let v = args.next().expect("--records needs a count");
                records = Some(v.trim().parse().expect("--records must be an integer"));
            }
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if smoke && !pes_overridden {
        pes_list = vec![1, 2, 4, 8];
    }
    let fig3_pes = if smoke { 8 } else { 32 };
    let single_pes = if smoke { 4 } else { 16 };
    Args { experiment, scale, pes_list, fig3_pes, single_pes, records, smoke, out }
}

/// The scale the throughput benchmarks run at: `--records` pins the
/// total record count exactly; otherwise the full (non-smoke) scale is
/// doubled so the final merge's wall time is long enough to time
/// meaningfully.
fn bench_scale(args: &Args, pes: usize) -> ExpScale {
    let mut scale = args.scale.clone();
    match args.records {
        Some(r) => {
            let per_pe = (r as usize).div_ceil(pes).max(1);
            scale.data_bytes_per_pe = per_pe * 16; // Element16
        }
        None if !args.smoke => scale.data_bytes_per_pe *= 2,
        None => {}
    }
    scale
}

fn main() {
    let args = parse_args();
    let mut emitted: Vec<(String, Table)> = Vec::new();
    let mut emit = |name: &str, t: Table| {
        t.print();
        emitted.push((name.to_string(), t));
    };

    let want = |n: &str| args.experiment == "all" || args.experiment == n;
    if want("fig2") {
        emit("fig2", experiments::fig2(&args.scale, &args.pes_list));
    }
    if want("fig3") {
        emit("fig3", experiments::fig3(&args.scale, args.fig3_pes));
    }
    if want("fig4") {
        emit("fig4", experiments::fig4(&args.scale, &args.pes_list));
    }
    if want("fig5") {
        emit("fig5", experiments::fig5(&args.scale, &args.pes_list));
    }
    if want("fig6") {
        emit("fig6", experiments::fig6(&args.scale, &args.pes_list));
    }
    if want("sortbench") {
        emit("sortbench", experiments::sortbench(&args.scale, args.single_pes));
    }
    if want("ablate-selection") {
        emit("ablate_selection", experiments::ablate_selection(&args.scale, args.single_pes));
    }
    if want("ablate-overlap") {
        emit("ablate_overlap", experiments::ablate_overlap(&args.scale, args.single_pes));
    }
    if want("ablate-runlength") {
        emit("ablate_runlength", experiments::ablate_runlength(&args.scale));
    }
    if want("ablate-prefetch") {
        emit("ablate_prefetch", experiments::ablate_prefetch(&args.scale));
    }
    if want("striped-vs-canonical") {
        emit(
            "striped_vs_canonical",
            experiments::striped_vs_canonical(&args.scale, &args.pes_list),
        );
    }
    if want("baseline-skew") {
        emit("baseline_skew", experiments::baseline_skew(&args.scale, args.single_pes));
    }
    // Machine-readable throughput benchmarks (not paper tables): JSON
    // to stdout and to OUT/BENCH_striped.json (replication off and on)
    // plus OUT/BENCH_merge_parallel.json (in-node cores sweep).
    let mut bench_emitted = false;
    if want("bench-striped") {
        let scale = bench_scale(&args, args.single_pes);
        let striped = experiments::bench_striped_json(&scale, args.single_pes, &[0, 1]);
        let par = experiments::bench_merge_parallel_json(&scale, args.single_pes, &[1, 2, 4, 8]);
        for (name, json) in [("BENCH_striped.json", &striped), ("BENCH_merge_parallel.json", &par)]
        {
            print!("{json}");
            if let Err(e) = std::fs::create_dir_all(&args.out)
                .and_then(|()| std::fs::write(args.out.join(name), json))
            {
                eprintln!("warning: could not write {}/{name}: {e}", args.out.display());
            }
        }
        bench_emitted = true;
    }

    if emitted.is_empty() && !bench_emitted {
        eprintln!("unknown experiment `{}`; try --help", args.experiment);
        std::process::exit(2);
    }
    for (name, t) in &emitted {
        if let Err(e) = t.write_csv(&args.out, name) {
            eprintln!("warning: could not write {}/{}.csv: {e}", args.out.display(), name);
        }
    }
    if !emitted.is_empty() {
        eprintln!("CSV written to {}/", args.out.display());
    }
}
