//! Failure injection: storage errors must surface as `Err`, never as
//! silent corruption, through every layer of the stack.

use demsort::core::canonical::canonical_mergesort;
use demsort::core::ctx::ClusterStorage;
use demsort::core::runform::ingest_input;
use demsort::net::run_cluster;
use demsort::prelude::*;
use demsort::storage::{Backend, FaultInjectingBackend, MemBackend};
use demsort::workloads::generate_pe_input;
use std::sync::Arc;

/// A single-PE cluster whose backend fails at operation `fail_at`.
/// (Single PE: a failing collective participant would stall its peers,
/// which is the real-MPI behaviour — job abort — that an in-process
/// harness cannot imitate gracefully.)
fn faulty_cluster(fail_at: u64) -> (Arc<ClusterStorage>, SortConfig) {
    let machine = MachineConfig::tiny(1);
    let storage = ClusterStorage::with_backends(&machine, |m| {
        let b: Arc<dyn Backend> =
            Arc::new(FaultInjectingBackend::new(MemBackend::new(m.disks_per_pe), fail_at));
        b
    });
    let cfg = SortConfig::new(machine, AlgoConfig::default()).expect("valid");
    (storage, cfg)
}

/// Run the full sort against a backend that fails at `fail_at`;
/// returns Ok(()) if the sort succeeded, Err otherwise.
fn sort_with_fault(fail_at: u64) -> Result<(), demsort::types::Error> {
    let (storage, cfg) = faulty_cluster(fail_at);
    let storage_ref = &storage;
    let cfg2 = cfg.clone();
    let results = run_cluster(1, move |c| {
        let st = storage_ref.pe(0);
        let recs = generate_pe_input(InputSpec::Uniform, 3, 0, 1, 600);
        let input = ingest_input(st, &recs)?;
        canonical_mergesort::<Element16>(&c, storage_ref, &cfg2, input, 1)?;
        Ok(())
    });
    results.into_iter().next().expect("one PE")
}

#[test]
fn fault_during_ingest_is_reported() {
    let err = sort_with_fault(0).expect_err("first write must fail");
    assert!(matches!(err, demsort::types::Error::Io(_)), "{err}");
}

#[test]
fn faults_in_every_phase_are_reported_not_swallowed() {
    // Sweep the injection point across the whole run: every failure
    // must produce Err(Io) — and with injection beyond the total op
    // count, the sort must succeed.
    let total_ops = {
        // Count ops with an unreachable injection point.
        sort_with_fault(u64::MAX).expect("clean run");
        // Rerun with a counting backend to learn the op count: reuse
        // the fault counter by bisection instead — find the first
        // injection point that no longer fails.
        let mut lo = 0u64;
        let mut hi = 1 << 20;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if sort_with_fault(mid).is_err() {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    };
    assert!(total_ops > 10, "a real sort does many I/O ops (got {total_ops})");

    // Probe a spread of injection points strictly below the total.
    for frac in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
        let at = ((total_ops - 1) as f64 * frac) as u64;
        let err = sort_with_fault(at).expect_err("injected fault must surface");
        assert!(matches!(err, demsort::types::Error::Io(_)), "at op {at}: {err}");
    }
    // And beyond it, the sort succeeds.
    sort_with_fault(total_ops).expect("no fault reached");
}

#[test]
fn engine_survives_fault_and_stays_usable() {
    // After an injected failure the engine and allocator must stay
    // consistent: a fresh sort on the same storage object succeeds.
    let (storage, cfg) = faulty_cluster(5);
    let storage_ref = &storage;
    let cfg2 = cfg.clone();
    let first = run_cluster(1, move |_c| {
        let st = storage_ref.pe(0);
        let recs = generate_pe_input(InputSpec::Uniform, 3, 0, 1, 600);
        ingest_input(st, &recs).map(|_| ())
    });
    assert!(first[0].is_err(), "fault at op 5 hits ingest");

    let storage_ref = &storage;
    let results = run_cluster(1, move |c| {
        let st = storage_ref.pe(0);
        let recs = generate_pe_input(InputSpec::Uniform, 4, 0, 1, 200);
        let input = ingest_input(st, &recs)?;
        canonical_mergesort::<Element16>(&c, storage_ref, &cfg2, input, 1).map(|_| ())
    });
    results.into_iter().next().expect("one PE").expect("second run succeeds past the fault");
}
