//! Per-PE, per-phase resource counters.
//!
//! The substrates (storage, net) and algorithms record *what actually
//! happened* — bytes moved per disk, bytes on the wire, elements
//! processed — and the `demsort-simcost` crate converts those measured
//! volumes into cluster phase times under a hardware profile. Figure 5
//! of the paper is read directly off [`IoCounters`]; Figures 2/3/4/6
//! additionally use the cost model.

use std::collections::BTreeMap;

/// The four phases of CANONICALMERGESORT as reported in Figures 2–6.
/// The striped algorithm and baselines map their work onto the nearest
/// equivalents.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Phase 1: run formation (read input, distributed sort, write runs).
    RunFormation,
    /// Phase 2a: multiway selection of exact splitters.
    MultiwaySelection,
    /// Phase 2b: external all-to-all redistribution.
    AllToAll,
    /// Phase 3: final local merge.
    FinalMerge,
}

impl Phase {
    /// All phases in algorithm order.
    pub const ALL: [Phase; 4] =
        [Phase::RunFormation, Phase::MultiwaySelection, Phase::AllToAll, Phase::FinalMerge];

    /// Short human-readable name (matches the figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::RunFormation => "Run formation",
            Phase::MultiwaySelection => "Multiway Selection",
            Phase::AllToAll => "All-to-all",
            Phase::FinalMerge => "Final merge",
        }
    }

    /// Stable snake_case key used in machine-readable output (trace
    /// journals, `BENCH_striped.json`).
    pub fn key(&self) -> &'static str {
        match self {
            Phase::RunFormation => "run_formation",
            Phase::MultiwaySelection => "multiway_selection",
            Phase::AllToAll => "all_to_all",
            Phase::FinalMerge => "final_merge",
        }
    }

    /// Inverse of [`Phase::key`].
    pub fn from_key(s: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.key() == s)
    }

    /// Position of this phase in [`Phase::ALL`] (algorithm order).
    pub fn index(&self) -> usize {
        Phase::ALL.iter().position(|p| p == self).expect("phase in ALL")
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Disk traffic counters for one PE (summed over its local disks, with
/// the per-disk maximum of simulated busy time kept separately since
/// local disks run in parallel).
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct IoCounters {
    /// Bytes read from local disks.
    pub bytes_read: u64,
    /// Bytes written to local disks.
    pub bytes_written: u64,
    /// Block read operations.
    pub blocks_read: u64,
    /// Block write operations.
    pub blocks_written: u64,
    /// Simulated busy time of the *busiest* local disk, in nanoseconds
    /// (local disks operate concurrently, so the busiest disk bounds the
    /// PE's I/O time).
    pub max_disk_busy_ns: u64,
}

impl IoCounters {
    /// Total bytes moved (read + written).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Counter-wise sum; busy time takes the max (parallel disks).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            blocks_read: self.blocks_read + other.blocks_read,
            blocks_written: self.blocks_written + other.blocks_written,
            max_disk_busy_ns: self.max_disk_busy_ns + other.max_disk_busy_ns,
        }
    }

    /// Difference `self - earlier` (for phase deltas from cumulative
    /// counters).
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            blocks_read: self.blocks_read - earlier.blocks_read,
            blocks_written: self.blocks_written - earlier.blocks_written,
            max_disk_busy_ns: self.max_disk_busy_ns.saturating_sub(earlier.max_disk_busy_ns),
        }
    }
}

/// Network traffic counters for one PE.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CommCounters {
    /// Payload bytes sent to other PEs (self-messages are free and not
    /// counted, matching MPI practice of memcpy for self sends).
    pub bytes_sent: u64,
    /// Payload bytes received from other PEs.
    pub bytes_recv: u64,
    /// Number of point-to-point messages sent (collectives decompose).
    pub messages: u64,
}

impl CommCounters {
    /// Counter-wise sum.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            messages: self.messages + other.messages,
        }
    }

    /// Difference `self - earlier`.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_recv: self.bytes_recv - earlier.bytes_recv,
            messages: self.messages - earlier.messages,
        }
    }
}

/// CPU work counters for one PE.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct CpuCounters {
    /// Elements passed through comparison-based sorting
    /// (`n` of an `n log n` local sort).
    pub elements_sorted: u64,
    /// Sum over sort calls of `n · ⌈log2 n⌉` — the comparison count
    /// proxy for sorting. The cost model scales it exactly: sorting
    /// `s·n` elements costs `s·(n log n + n log s)`.
    pub sort_work: u64,
    /// Elements passed through k-way merging (`n` of an `n log k`
    /// merge).
    pub elements_merged: u64,
    /// Sum over merge calls of `elements · ⌈log2 k⌉` — the comparison
    /// count proxy for merging.
    pub merge_work: u64,
    /// Sequence probes spent by multiway *split* selections (the range
    /// splitters of the in-node parallel merge). Kept separate from
    /// `merge_work` so the `n · ⌈log2 k⌉` merge-comparison bound stays
    /// exact regardless of how many threads the merge ran on.
    pub split_probes: u64,
    /// Wall-clock nanoseconds actually spent on this phase on the host
    /// machine (sanity signal; the cost model uses the work counters).
    pub host_wall_ns: u64,
}

impl CpuCounters {
    /// Counter-wise sum.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            elements_sorted: self.elements_sorted + other.elements_sorted,
            sort_work: self.sort_work + other.sort_work,
            elements_merged: self.elements_merged + other.elements_merged,
            merge_work: self.merge_work + other.merge_work,
            split_probes: self.split_probes + other.split_probes,
            host_wall_ns: self.host_wall_ns + other.host_wall_ns,
        }
    }
}

/// All counters for one phase on one PE.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Disk traffic.
    pub io: IoCounters,
    /// Network traffic.
    pub comm: CommCounters,
    /// CPU work.
    pub cpu: CpuCounters,
}

impl PhaseStats {
    /// Merge two phase stats (e.g. accumulate across runs).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            io: self.io.merge(&other.io),
            comm: self.comm.merge(&other.comm),
            cpu: self.cpu.merge(&other.cpu),
        }
    }
}

/// The full result of a distributed sort: per-PE, per-phase counters
/// plus global metadata. Returned by every sorter so experiments and
/// the cost model share one format.
#[derive(Clone, Debug, Default)]
pub struct SortReport {
    /// Number of PEs that participated.
    pub pes: usize,
    /// Total elements sorted.
    pub elements: u64,
    /// Bytes per element.
    pub element_bytes: usize,
    /// Number of runs formed (`R`).
    pub runs: usize,
    /// `stats[pe][phase]` — measured counters.
    pub stats: Vec<BTreeMap<Phase, PhaseStats>>,
}

impl SortReport {
    /// Create an empty report for `pes` PEs.
    pub fn new(pes: usize, elements: u64, element_bytes: usize, runs: usize) -> Self {
        Self { pes, elements, element_bytes, runs, stats: vec![BTreeMap::new(); pes] }
    }

    /// Record (accumulate) stats for a phase on a PE.
    pub fn record(&mut self, pe: usize, phase: Phase, stats: PhaseStats) {
        let slot = self.stats[pe].entry(phase).or_default();
        *slot = slot.merge(&stats);
    }

    /// Counters for a phase on a PE (zero if never recorded).
    pub fn get(&self, pe: usize, phase: Phase) -> PhaseStats {
        self.stats[pe].get(&phase).copied().unwrap_or_default()
    }

    /// Sum of a metric over all PEs for one phase.
    pub fn phase_total(&self, phase: Phase, f: impl Fn(&PhaseStats) -> u64) -> u64 {
        (0..self.pes).map(|pe| f(&self.get(pe, phase))).sum()
    }

    /// Maximum of a metric over all PEs for one phase — the right
    /// aggregation for wall time, where a phase ends when its slowest
    /// PE does.
    pub fn phase_max(&self, phase: Phase, f: impl Fn(&PhaseStats) -> u64) -> u64 {
        (0..self.pes).map(|pe| f(&self.get(pe, phase))).max().unwrap_or(0)
    }

    /// Total bytes of input (`N · element_bytes`).
    pub fn total_bytes(&self) -> u64 {
        self.elements * self.element_bytes as u64
    }

    /// Total disk traffic over all PEs and phases, in units of the input
    /// size — the paper's "number of passes" is half of this (one pass =
    /// read + write).
    pub fn io_volume_over_n(&self) -> f64 {
        let io: u64 =
            Phase::ALL.iter().map(|ph| self.phase_total(*ph, |s| s.io.bytes_total())).sum();
        io as f64 / self.total_bytes() as f64
    }

    /// Communication volume (bytes sent, all PEs, all phases) over input
    /// size.
    pub fn comm_volume_over_n(&self) -> f64 {
        let comm: u64 =
            Phase::ALL.iter().map(|ph| self.phase_total(*ph, |s| s.comm.bytes_sent)).sum();
        comm as f64 / self.total_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_match_figures() {
        assert_eq!(Phase::RunFormation.name(), "Run formation");
        assert_eq!(Phase::AllToAll.name(), "All-to-all");
    }

    #[test]
    fn io_delta_and_merge() {
        let a = IoCounters {
            bytes_read: 100,
            bytes_written: 50,
            blocks_read: 2,
            blocks_written: 1,
            max_disk_busy_ns: 10,
        };
        let b = IoCounters {
            bytes_read: 160,
            bytes_written: 90,
            blocks_read: 3,
            blocks_written: 2,
            max_disk_busy_ns: 25,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.bytes_read, 60);
        assert_eq!(d.bytes_written, 40);
        assert_eq!(d.max_disk_busy_ns, 15);
        assert_eq!(a.merge(&d).bytes_total(), b.bytes_total());
    }

    #[test]
    fn report_accumulates() {
        let mut r = SortReport::new(2, 1000, 16, 4);
        let s = PhaseStats {
            io: IoCounters { bytes_read: 16_000, ..Default::default() },
            ..Default::default()
        };
        r.record(0, Phase::RunFormation, s);
        r.record(0, Phase::RunFormation, s);
        assert_eq!(r.get(0, Phase::RunFormation).io.bytes_read, 32_000);
        assert_eq!(r.get(1, Phase::RunFormation).io.bytes_read, 0);
        assert_eq!(r.phase_total(Phase::RunFormation, |s| s.io.bytes_read), 32_000);
    }

    #[test]
    fn volume_ratios() {
        let mut r = SortReport::new(1, 1000, 16, 1);
        // one pass = read once + write once = 2N bytes of traffic
        let s = PhaseStats {
            io: IoCounters { bytes_read: 16_000, bytes_written: 16_000, ..Default::default() },
            ..Default::default()
        };
        r.record(0, Phase::RunFormation, s);
        assert!((r.io_volume_over_n() - 2.0).abs() < 1e-9);
        assert_eq!(r.comm_volume_over_n(), 0.0);
    }
}
