//! Human-readable byte-size formatting for reports and logs.

/// Format a byte count with binary units (KiB/MiB/GiB/TiB).
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    if bytes == 0 {
        return "0 B".to_string();
    }
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else if value >= 100.0 {
        format!("{value:.0} {}", UNITS[unit])
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

/// Format a throughput (bytes per second) with decimal units, like the
/// SortBenchmark tables (GB/min uses 10^9).
pub fn fmt_throughput(bytes_per_sec: f64) -> String {
    let gb_per_min = bytes_per_sec * 60.0 / 1e9;
    if gb_per_min >= 1.0 {
        format!("{gb_per_min:.1} GB/min")
    } else {
        format!("{:.1} MB/min", bytes_per_sec * 60.0 / 1e6)
    }
}

/// Format nanoseconds as seconds with sensible precision.
pub fn fmt_secs(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(8 << 20), "8.00 MiB");
        assert_eq!(fmt_bytes(100 << 30), "100 GiB");
        assert_eq!(fmt_bytes(1 << 40), "1.00 TiB");
    }

    #[test]
    fn throughput_gb_min() {
        // 564 GB/min ≈ 9.4 GB/s — the paper's GraySort rate.
        let s = fmt_throughput(9.4e9);
        assert!(s.contains("GB/min"), "{s}");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(1_500_000), "1.50 ms");
        assert_eq!(fmt_secs(2_500_000_000), "2.50 s");
        assert_eq!(fmt_secs(150_000_000_000), "150 s");
    }
}
