//! Record-aligned block I/O for sorted runs.
//!
//! The storage layer moves raw bytes; the algorithms move records. Like
//! STXXL's `typed_block`, a *record run* stores exactly
//! `⌊B / Record::BYTES⌋` records per block (the final block may hold
//! fewer), so element `i` of a run lives at a computable `(block,
//! offset)` — the property external multiway selection relies on for
//! its random probes, and the all-to-all needs to cut runs at arbitrary
//! element boundaries.
//!
//! [`RecordRunWriter`] additionally collects, while writing:
//! * a **sample** of every `K`-th record (Section IV-A: "during run
//!   formation, we store every K-th element of the sorted run as a
//!   sample"), and
//! * the **first key of every block** — the prediction sequence of
//!   Section III / \[11\].

use demsort_storage::{PeStorage, Run, RunWriter};
use demsort_types::{Record, Result};
use std::collections::VecDeque;

/// Records per (full) block for record type `R`.
///
/// # Panics
/// Panics if a block cannot hold at least one record.
pub fn records_per_block<R: Record>(block_bytes: usize) -> usize {
    let rpb = block_bytes / R::BYTES;
    assert!(rpb > 0, "block size {} smaller than a record ({})", block_bytes, R::BYTES);
    rpb
}

/// Number of blocks a run of `elems` records occupies.
pub fn blocks_for<R: Record>(elems: u64, block_bytes: usize) -> u64 {
    elems.div_ceil(records_per_block::<R>(block_bytes) as u64)
}

/// A sampled record: its position within the (local part of the) run
/// and the record itself.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Sample<R> {
    /// Element index the sample was taken at.
    pub pos: u64,
    /// The sampled record.
    pub rec: R,
}

/// Streaming writer of a record-aligned sorted run.
pub struct RecordRunWriter<'a, R: Record> {
    inner: RunWriter<'a>,
    st: &'a PeStorage,
    buf: Vec<R>,
    rpb: usize,
    elems: u64,
    sample_every: usize,
    samples: Vec<Sample<R>>,
    block_first_keys: Vec<R::Key>,
    block_bytes: usize,
}

impl<'a, R: Record> RecordRunWriter<'a, R> {
    /// Start a run on `st`; `sample_every = 0` disables sampling.
    pub fn new(st: &'a PeStorage, sample_every: usize) -> Self {
        Self::with_window(st, sample_every, demsort_storage::striping::DEFAULT_WRITE_BEHIND)
    }

    /// Start a run with an explicit write-behind window (in blocks).
    /// Run formation uses an unbounded window so a whole slice can be
    /// queued without blocking, overlapping the next run's sort.
    pub fn with_window(st: &'a PeStorage, sample_every: usize, window: usize) -> Self {
        let rpb = records_per_block::<R>(st.block_bytes());
        Self {
            inner: RunWriter::with_window(st, window.max(st.disks())),
            st,
            buf: Vec::with_capacity(rpb),
            rpb,
            elems: 0,
            sample_every,
            samples: Vec::new(),
            block_first_keys: Vec::new(),
            block_bytes: st.block_bytes(),
        }
    }

    /// Append one record.
    pub fn push(&mut self, rec: R) -> Result<()> {
        if self.sample_every > 0 && self.elems.is_multiple_of(self.sample_every as u64) {
            self.samples.push(Sample { pos: self.elems, rec });
        }
        if self.buf.is_empty() {
            self.block_first_keys.push(rec.key());
        }
        self.buf.push(rec);
        self.elems += 1;
        if self.buf.len() == self.rpb {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Append a slice of records.
    pub fn push_all(&mut self, recs: &[R]) -> Result<()> {
        for &r in recs {
            self.push(r)?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<()> {
        // Encode straight into a pooled block (recycled once its write
        // retires) instead of cloning a scratch buffer per block.
        // Recycled buffers keep their previous contents, so only the
        // tail past the encoded records needs zeroing.
        let mut block = self.st.pool().get();
        R::encode_slice(&self.buf, &mut block);
        block[self.buf.len() * R::BYTES..].fill(0);
        self.st.pool().add_copied((self.buf.len() * R::BYTES) as u64);
        self.buf.clear();
        self.inner.push_block(block)
    }

    /// Records written so far.
    pub fn elems(&self) -> u64 {
        self.elems
    }

    /// Finish the run; returns the completed [`FinishedRun`].
    pub fn finish(mut self) -> Result<FinishedRun<R>> {
        if !self.buf.is_empty() {
            self.flush_block()?;
        }
        let mut run = self.inner.finish()?;
        // The writer zero-pads partial tails; logical length is in
        // elements, so normalize the byte length to the aligned layout.
        run.bytes = run.blocks.len() as u64 * self.block_bytes as u64;
        Ok(FinishedRun {
            run,
            elems: self.elems,
            samples: self.samples,
            block_first_keys: self.block_first_keys,
        })
    }
}

/// A completed record run with its sampling metadata.
#[derive(Clone, Debug)]
pub struct FinishedRun<R: Record> {
    /// The on-disk blocks.
    pub run: Run,
    /// Number of records.
    pub elems: u64,
    /// Every `K`-th record (empty if sampling was disabled).
    pub samples: Vec<Sample<R>>,
    /// First key of every block — the prediction sequence.
    pub block_first_keys: Vec<R::Key>,
}

impl<R: Record> FinishedRun<R> {
    /// An empty run (no blocks, no records).
    pub fn empty() -> Self {
        Self { run: Run::default(), elems: 0, samples: Vec::new(), block_first_keys: Vec::new() }
    }
}

/// Streaming reader over an element range of a record-aligned run,
/// with bounded read-ahead; optionally frees blocks once fully
/// consumed (in-place operation).
pub struct RecordRunReader<'a, R: Record> {
    st: &'a PeStorage,
    run: Run,
    rpb: usize,
    /// Next element to deliver (absolute index within the run).
    next_elem: u64,
    /// One past the last element to deliver.
    end_elem: u64,
    /// Decoded records of the current block.
    current: Vec<R>,
    /// Position within `current`.
    current_pos: usize,
    /// In-flight block reads (block index, handle).
    pending: VecDeque<(usize, demsort_storage::IoHandle)>,
    next_issue_block: usize,
    end_block: usize,
    readahead: usize,
    free_after_read: bool,
}

impl<'a, R: Record> RecordRunReader<'a, R> {
    /// Read the whole run (`elems` records) from `st`.
    pub fn new(st: &'a PeStorage, run: Run, elems: u64) -> Self {
        Self::with_range(st, run, elems, 0, elems, false)
    }

    /// Read records `start..end` of the run; `free_after_read` recycles
    /// each block after its last needed record has been delivered
    /// (including boundary blocks that also hold out-of-range records).
    pub fn with_range(
        st: &'a PeStorage,
        run: Run,
        elems: u64,
        start: u64,
        end: u64,
        free_after_read: bool,
    ) -> Self {
        assert!(start <= end && end <= elems, "range {start}..{end} out of 0..{elems}");
        let rpb = records_per_block::<R>(st.block_bytes());
        let start_block = (start / rpb as u64) as usize;
        let end_block = (end.div_ceil(rpb as u64) as usize).min(run.blocks.len());
        Self {
            st,
            run,
            rpb,
            next_elem: start,
            end_elem: end,
            current: Vec::with_capacity(rpb),
            current_pos: 0,
            pending: VecDeque::new(),
            next_issue_block: start_block,
            end_block,
            readahead: st.disks().max(2),
            free_after_read,
        }
    }

    fn top_up(&mut self) {
        while self.pending.len() < self.readahead && self.next_issue_block < self.end_block {
            let id = self.run.blocks[self.next_issue_block];
            self.pending.push_back((self.next_issue_block, self.st.engine().read(id)));
            self.next_issue_block += 1;
        }
    }

    /// Remaining records in the range.
    pub fn remaining(&self) -> u64 {
        self.end_elem - self.next_elem
    }

    /// Deliver the next record, or `None` at the end of the range.
    pub fn next_rec(&mut self) -> Result<Option<R>> {
        if self.next_elem >= self.end_elem {
            return Ok(None);
        }
        if self.current_pos >= self.current.len() {
            self.top_up();
            let (block_idx, h) = self.pending.pop_front().expect("blocks cover the range");
            let data = h.wait()?;
            self.current.clear();
            // Valid records in this block, clipped to the range.
            let block_start = block_idx as u64 * self.rpb as u64;
            let in_block = (self.end_elem.min((block_idx as u64 + 1) * self.rpb as u64)
                - block_start) as usize;
            R::decode_slice(&data[..in_block * R::BYTES], &mut self.current);
            self.st.pool().add_copied((in_block * R::BYTES) as u64);
            self.st.pool().put(data);
            self.current_pos = (self.next_elem - block_start) as usize;
            if self.free_after_read {
                self.st.free_block(self.run.blocks[block_idx]);
            }
            self.top_up();
        }
        let rec = self.current[self.current_pos];
        self.current_pos += 1;
        self.next_elem += 1;
        Ok(Some(rec))
    }

    /// Read the rest of the range into a vector.
    pub fn read_to_vec(&mut self) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(self.remaining() as usize);
        while let Some(r) = self.next_rec()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// A reader chaining several sorted fragments into one sorted stream
/// (used by the final merge: per run, the received-from-lower pieces,
/// the retained local range, then the received-from-higher pieces).
pub struct ChainedReader<'a, R: Record> {
    parts: VecDeque<RecordRunReader<'a, R>>,
}

impl<'a, R: Record> ChainedReader<'a, R> {
    /// Chain `parts` in order.
    pub fn new(parts: Vec<RecordRunReader<'a, R>>) -> Self {
        Self { parts: parts.into() }
    }

    /// Total remaining records.
    pub fn remaining(&self) -> u64 {
        self.parts.iter().map(|p| p.remaining()).sum()
    }

    /// Next record across the chain.
    pub fn next_rec(&mut self) -> Result<Option<R>> {
        while let Some(front) = self.parts.front_mut() {
            if let Some(r) = front.next_rec()? {
                return Ok(Some(r));
            }
            self.parts.pop_front();
        }
        Ok(None)
    }
}

/// Convenience: write `recs` as a record run (no sampling).
pub fn write_records<R: Record>(st: &PeStorage, recs: &[R]) -> Result<FinishedRun<R>> {
    let mut w = RecordRunWriter::new(st, 0);
    w.push_all(recs)?;
    w.finish()
}

/// Convenience: read a whole record run back.
pub fn read_records<R: Record>(st: &PeStorage, run: &Run, elems: u64) -> Result<Vec<R>> {
    RecordRunReader::<R>::new(st, run.clone(), elems).read_to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_storage::{DiskModel, MemBackend};
    use demsort_types::{Element16, Record100};
    use std::sync::Arc;

    fn storage(block: usize) -> PeStorage {
        PeStorage::with_backend(2, block, DiskModel::paper(), Arc::new(MemBackend::new(2)))
    }

    fn elements(n: u64) -> Vec<Element16> {
        (0..n).map(|i| Element16::new(i * 3, i)).collect()
    }

    #[test]
    fn roundtrip_with_partial_tail() {
        let st = storage(64); // 4 Element16 per block
        let recs = elements(10);
        let fr = write_records(&st, &recs).expect("write");
        assert_eq!(fr.elems, 10);
        assert_eq!(fr.run.blocks.len(), 3);
        assert_eq!(read_records::<Element16>(&st, &fr.run, fr.elems).expect("read"), recs);
    }

    #[test]
    fn record100_padding_layout() {
        // 256-byte blocks hold 2 records of 100 bytes (56 bytes pad).
        let st = storage(256);
        assert_eq!(records_per_block::<Record100>(256), 2);
        let recs: Vec<Record100> =
            (0..5).map(|i| demsort_workloads::gensort_record(1, i)).collect();
        let fr = write_records(&st, &recs).expect("write");
        assert_eq!(fr.run.blocks.len(), 3);
        assert_eq!(read_records::<Record100>(&st, &fr.run, 5).expect("read"), recs);
    }

    #[test]
    fn sampling_every_k() {
        let st = storage(64);
        let mut w = RecordRunWriter::new(&st, 4);
        w.push_all(&elements(11)).expect("write");
        let fr = w.finish().expect("finish");
        let positions: Vec<u64> = fr.samples.iter().map(|s| s.pos).collect();
        assert_eq!(positions, vec![0, 4, 8]);
        for s in &fr.samples {
            assert_eq!(s.rec.key, s.pos * 3);
        }
    }

    #[test]
    fn block_first_keys_form_prediction_sequence() {
        let st = storage(64);
        let fr = write_records(&st, &elements(9)).expect("write");
        assert_eq!(fr.block_first_keys, vec![0, 12, 24]);
    }

    #[test]
    fn range_reads_with_offsets() {
        let st = storage(64);
        let recs = elements(20);
        let fr = write_records(&st, &recs).expect("write");
        for (start, end) in [(0u64, 20u64), (3, 17), (4, 8), (7, 7), (19, 20), (0, 1)] {
            let got = RecordRunReader::<Element16>::with_range(
                &st,
                fr.run.clone(),
                fr.elems,
                start,
                end,
                false,
            )
            .read_to_vec()
            .expect("read");
            assert_eq!(got, recs[start as usize..end as usize], "range {start}..{end}");
        }
    }

    #[test]
    fn free_after_read_recycles_exactly_range_blocks() {
        let st = storage(64);
        let fr = write_records(&st, &elements(16)).expect("write"); // 4 blocks
        assert_eq!(st.alloc().in_use(), 4);
        // Read elements 5..11 → blocks 1 and 2 are touched and freed.
        let got = RecordRunReader::<Element16>::with_range(&st, fr.run.clone(), 16, 5, 11, true)
            .read_to_vec()
            .expect("read");
        assert_eq!(got.len(), 6);
        assert_eq!(st.alloc().in_use(), 2, "two boundary-range blocks freed");
    }

    #[test]
    fn chained_reader_concatenates() {
        let st = storage(64);
        let a = write_records(&st, &elements(6)).expect("write a");
        let b = write_records(&st, &(6..10).map(|i| Element16::new(i * 3, i)).collect::<Vec<_>>())
            .expect("write b");
        let mut chain = ChainedReader::new(vec![
            RecordRunReader::<Element16>::new(&st, a.run, a.elems),
            RecordRunReader::<Element16>::new(&st, b.run, b.elems),
        ]);
        assert_eq!(chain.remaining(), 10);
        let mut out = Vec::new();
        while let Some(r) = chain.next_rec().expect("read") {
            out.push(r);
        }
        assert_eq!(out, elements(10));
    }

    #[test]
    fn empty_run_and_empty_chain() {
        let st = storage(64);
        let fr = write_records::<Element16>(&st, &[]).expect("write");
        assert_eq!(fr.elems, 0);
        assert!(read_records::<Element16>(&st, &fr.run, 0).expect("read").is_empty());
        let mut chain = ChainedReader::<Element16>::new(vec![]);
        assert!(chain.next_rec().expect("read").is_none());
    }

    #[test]
    #[should_panic(expected = "smaller than a record")]
    fn block_too_small_panics() {
        records_per_block::<Record100>(64);
    }
}
