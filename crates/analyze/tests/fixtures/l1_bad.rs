//! L1 fixture: panic paths in non-test code (impersonates crates/net).

pub fn boom() {
    panic!("kaboom");
}

pub fn grab(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn audit_me(r: Result<(), ()>) {
    r.expect("inventoried as a warning, not a deny");
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_inside_tests_are_fine() {
        panic!("test-only");
    }
}
