//! Multi-process loopback acceptance test: `demsort-launch`'s code
//! path (spawn real `demsort-worker` processes, rendezvous over a
//! coordinator port, full P×P TCP mesh) must produce **byte-identical**
//! sorted output and **identical communication counters** to the
//! in-process `LocalTransport` run of the same gensort input.
//!
//! Cargo builds the `demsort-worker` binary for this test and exposes
//! its path via `CARGO_BIN_EXE_demsort-worker`.

use demsort_bench::procs::launch;
use demsort_core::canonical::sort_cluster;
use demsort_core::recio::read_records;
use demsort_core::validate::hash_record;
use demsort_types::{
    AlgoConfig, JobConfig, MachineConfig, Phase, Record as _, Record100, SortAlgo, SortConfig,
    SortReport,
};
use demsort_workloads::gensort_records;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const RECORDS: usize = 3_000;
const RANKS: usize = 4;

fn test_machine() -> MachineConfig {
    // Tiny blocks and memory force a genuinely external sort (R > 1)
    // with remote selection probes crossing the TCP mesh.
    MachineConfig {
        pes: RANKS,
        disks_per_pe: 2,
        block_bytes: 1 << 10,
        mem_bytes_per_pe: 16 << 10,
        cores_per_pe: 1,
    }
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demsort-tcp-launch-{}-{name}", std::process::id()))
}

fn write_gensort_input(path: &Path) {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create input"));
    let mut buf = vec![0u8; Record100::BYTES];
    for rec in gensort_records(7, 0, RECORDS) {
        rec.encode(&mut buf);
        f.write_all(&buf).expect("write record");
    }
    f.flush().expect("flush");
}

/// The in-process reference: sortfile's local mode in miniature.
fn sort_in_process(input: &Path, output: &Path) -> SortReport {
    let cfg = SortConfig::new(test_machine(), AlgoConfig::default()).expect("valid");
    let input_path = input.to_path_buf();
    let outcome = sort_cluster::<Record100, _>(&cfg, move |pe, p| {
        let shard = demsort_types::ranks::owned_range(pe, p, RECORDS as u64);
        let mut f = std::fs::File::open(&input_path).expect("open input");
        f.seek(SeekFrom::Start(shard.start * Record100::BYTES as u64)).expect("seek");
        let mut bytes = vec![0u8; (shard.end - shard.start) as usize * Record100::BYTES];
        f.read_exact(&mut bytes).expect("read shard");
        let mut recs = Vec::new();
        Record100::decode_slice(&bytes, &mut recs);
        recs
    })
    .expect("in-process sort");

    let mut out = std::io::BufWriter::new(std::fs::File::create(output).expect("create output"));
    let mut buf = vec![0u8; Record100::BYTES];
    for (pe, o) in outcome.per_pe.iter().enumerate() {
        for rec in read_records::<Record100>(outcome.storage.pe(pe), &o.output.run, o.output.elems)
            .expect("read output")
        {
            rec.encode(&mut buf);
            out.write_all(&buf).expect("write");
        }
    }
    out.flush().expect("flush");
    outcome.report
}

fn valsort(path: &Path) -> (u64, u64) {
    let bytes = std::fs::read(path).expect("read sorted file");
    assert_eq!(bytes.len() % Record100::BYTES, 0);
    let mut recs = Vec::new();
    Record100::decode_slice(&bytes, &mut recs);
    assert!(
        recs.windows(2).all(|w| w[0].key <= w[1].key),
        "{} must be globally sorted",
        path.display()
    );
    let sum = recs.iter().fold(0u64, |acc, r| acc.wrapping_add(hash_record(r)));
    (recs.len() as u64, sum)
}

#[test]
fn four_rank_tcp_launch_matches_in_process_run() {
    let input = tmp_path("input.dat");
    let out_tcp = tmp_path("out-tcp.dat");
    let out_local = tmp_path("out-local.dat");
    write_gensort_input(&input);

    // --- multi-process run: real worker processes over loopback TCP ---
    let job = JobConfig {
        input: input.to_string_lossy().into_owned(),
        output: out_tcp.to_string_lossy().into_owned(),
        machine: test_machine(),
        algo: AlgoConfig::default(),
        algorithm: SortAlgo::Canonical,
        read_timeout_ms: 60_000,
        trace_dir: String::new(),
    };
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_demsort-worker"));
    let tcp = launch(&job, &worker).expect("tcp launch");
    assert_eq!(tcp.per_rank.len(), RANKS);
    assert!(tcp.report.runs > 1, "test must exercise the external path (R > 1)");

    // --- in-process reference run ---
    let local_report = sort_in_process(&input, &out_local);

    // Byte-identical sorted output.
    let tcp_bytes = std::fs::read(&out_tcp).expect("read tcp output");
    let local_bytes = std::fs::read(&out_local).expect("read local output");
    assert_eq!(tcp_bytes.len(), RECORDS * Record100::BYTES);
    assert_eq!(tcp_bytes, local_bytes, "outputs must be byte-identical across transports");

    // valsort-clean: sorted, a permutation of the input.
    let (n, fp) = valsort(&out_tcp);
    assert_eq!(n, RECORDS as u64);
    let input_bytes = std::fs::read(&input).expect("read input");
    let mut input_recs = Vec::new();
    Record100::decode_slice(&input_bytes, &mut input_recs);
    let input_fp = input_recs.iter().fold(0u64, |acc, r| acc.wrapping_add(hash_record(r)));
    assert_eq!(fp, input_fp, "output must be a permutation of the input");

    // Identical CommCounters: per rank, per phase, message and byte
    // totals must match the in-process run exactly — the transport
    // must be invisible to the metered algorithm.
    for pe in 0..RANKS {
        for phase in Phase::ALL {
            let t = tcp.report.get(pe, phase).comm;
            let l = local_report.get(pe, phase).comm;
            assert_eq!(t, l, "comm counters (pe {pe}, {phase})");
        }
    }
    // And the I/O volumes: the workers run the same storage engine.
    // Compared as per-PE totals, not per phase: serving a selection
    // probe charges the block read to the *owner's* engine at whatever
    // instant the prober asks, so its phase attribution on the owner
    // is scheduling-dependent (a fast rank can probe a peer that has
    // not closed its previous phase yet) — on either transport. The
    // probe set itself is deterministic, so totals match exactly.
    for pe in 0..RANKS {
        let totals = |rep: &SortReport| {
            Phase::ALL
                .iter()
                .map(|ph| {
                    let io = rep.get(pe, *ph).io;
                    (io.bytes_read, io.bytes_written, io.blocks_read, io.blocks_written)
                })
                .fold((0, 0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3))
        };
        assert_eq!(totals(&tcp.report), totals(&local_report), "io totals (pe {pe})");
    }

    for p in [&input, &out_tcp, &out_local] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn launch_surfaces_worker_failure() {
    // An input that passes the launcher's pre-flight but fails in the
    // workers (not whole 100-byte records): the failure must come back
    // as a clean error over the coordinator connection, not a hang.
    let input = tmp_path("truncated.dat");
    std::fs::write(&input, vec![0u8; 150]).expect("write truncated input");
    let out = tmp_path("out-fail.dat");
    let job = JobConfig {
        input: input.to_string_lossy().into_owned(),
        output: out.to_string_lossy().into_owned(),
        machine: MachineConfig { pes: 2, ..test_machine() },
        algo: AlgoConfig::default(),
        algorithm: SortAlgo::Canonical,
        read_timeout_ms: 10_000,
        trace_dir: String::new(),
    };
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_demsort-worker"));
    let err = launch(&job, &worker).expect_err("bad input must fail the launch");
    let msg = err.to_string();
    assert!(msg.contains("failed") || msg.contains("exited"), "useful error: {msg}");
    for p in [&input, &out] {
        let _ = std::fs::remove_file(p);
    }
}
