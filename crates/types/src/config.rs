//! Machine and algorithm configuration.
//!
//! Mirrors Table I of the paper:
//!
//! | Resource | Symbol | Here |
//! |---|---|---|
//! | #PEs | `P` | [`MachineConfig::pes`] |
//! | internal memory (elements) | `M` | `P ·` [`MachineConfig::mem_bytes_per_pe`] |
//! | #disks | `D` | `P ·` [`MachineConfig::disks_per_pe`] |
//! | block size | `B` | [`MachineConfig::block_bytes`] |
//! | #elements | `N` | per experiment |
//! | #runs | `R` | `⌈N/M⌉` |
//!
//! Sizes here are in **bytes** (the paper uses element counts; the
//! conversion is `bytes / Record::BYTES`).

use crate::error::{Error, Result};

/// Static description of the (simulated) cluster a sort runs on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processing elements `P` (one PE = one node = one
    /// communicator rank; the paper: "One cluster node corresponds to
    /// one PE").
    pub pes: usize,
    /// Disks per PE (`D = pes * disks_per_pe`); the paper's nodes have 4.
    pub disks_per_pe: usize,
    /// External-memory block size `B` in bytes (paper default: 8 MiB).
    pub block_bytes: usize,
    /// Local internal memory `m` in bytes available for run formation
    /// (paper: 16 GiB per node, i.e. `M = P·m`).
    pub mem_bytes_per_pe: usize,
    /// Cores per PE used by in-node parallel sorting (paper: 8).
    pub cores_per_pe: usize,
}

impl MachineConfig {
    /// A small laptop-scale configuration preserving the paper's ratios
    /// (`m/B = 2048` blocks of local memory).
    pub fn small(pes: usize) -> Self {
        Self {
            pes,
            disks_per_pe: 4,
            block_bytes: 4 << 10,
            mem_bytes_per_pe: (4 << 10) * 2048,
            cores_per_pe: 1,
        }
    }

    /// A tiny configuration for unit tests (few, small blocks).
    pub fn tiny(pes: usize) -> Self {
        Self { pes, disks_per_pe: 2, block_bytes: 256, mem_bytes_per_pe: 256 * 16, cores_per_pe: 1 }
    }

    /// The paper's cluster: 4 disks/node, B = 8 MiB, m = 16 GiB
    /// (2^34 bytes), 8 cores. Used by the cost model at paper scale.
    pub fn paper(pes: usize) -> Self {
        Self {
            pes,
            disks_per_pe: 4,
            block_bytes: 8 << 20,
            mem_bytes_per_pe: 16 << 30,
            cores_per_pe: 8,
        }
    }

    /// Global memory `M` in bytes (`P · m`) — the size of one run.
    pub fn global_mem_bytes(&self) -> u64 {
        self.pes as u64 * self.mem_bytes_per_pe as u64
    }

    /// Total number of disks `D`.
    pub fn total_disks(&self) -> usize {
        self.pes * self.disks_per_pe
    }

    /// Local memory measured in blocks (`m/B`).
    pub fn mem_blocks_per_pe(&self) -> usize {
        self.mem_bytes_per_pe / self.block_bytes
    }

    /// Smallest viable block-buffer pool: double-buffered prefetch on
    /// every disk plus a carry block and one spare. A pool below this
    /// thrashes (every steady-state `get` misses), so configs reject it.
    pub fn min_pool_blocks(&self) -> usize {
        2 * self.disks_per_pe + 2
    }

    /// Check the configuration is internally consistent.
    pub fn validate(&self) -> Result<()> {
        if self.pes == 0 {
            return Err(Error::config("pes must be > 0"));
        }
        if self.disks_per_pe == 0 {
            return Err(Error::config("disks_per_pe must be > 0"));
        }
        if self.block_bytes == 0 {
            return Err(Error::config("block_bytes must be > 0"));
        }
        if self.cores_per_pe == 0 {
            return Err(Error::config("cores_per_pe must be > 0"));
        }
        if self.mem_bytes_per_pe < 4 * self.block_bytes {
            return Err(Error::config(format!(
                "mem_bytes_per_pe ({}) must be at least 4 blocks ({})",
                self.mem_bytes_per_pe,
                4 * self.block_bytes
            )));
        }
        Ok(())
    }
}

/// Algorithmic switches of CANONICALMERGESORT and the striped variant.
#[derive(Clone, Debug, PartialEq)]
pub struct AlgoConfig {
    /// Randomize the assignment of local input blocks to runs
    /// ("each PE chooses its participating blocks for the run randomly",
    /// Section IV). Turning this off reproduces Figure 6.
    pub randomize: bool,
    /// Store every `K`-th element of each sorted run as a sample for
    /// initializing multiway selection (Section IV-A / Appendix B).
    /// `0` disables sampling (ablation).
    pub sample_every: usize,
    /// Number of most-recently-used blocks cached during external
    /// multiway selection ("we cache the most recently accessed disk
    /// blocks", Section IV-A). `0` disables the cache (ablation).
    pub selection_cache_blocks: usize,
    /// Overlap I/O with computation during run formation
    /// (Section IV-E "Overlapping"). Off = strictly sequential phases
    /// within run formation (ablation).
    pub overlap: bool,
    /// Seed for all pseudo-randomness (block shuffling, tie breaking);
    /// experiments are reproducible given the seed.
    pub seed: u64,
    /// Fraction of local memory the external all-to-all may use for its
    /// in-memory sub-operations (Section IV-C picks `k` accordingly).
    pub alltoall_mem_fraction: f64,
    /// Number of extra copies kept of every formed run's blocks
    /// (striped sort only). Copy `i` of a block owned by rank `o` lives
    /// on the deterministic buddy rank `(o + i) mod P`, written through
    /// the remote block-store protocol during run formation. `0` (the
    /// default) disables replication — the sort is byte- and
    /// counter-identical to a build without the feature. With
    /// `replication ≥ 1` the merge phase can fail over to a replica and
    /// finish the sort after up to `replication` rank deaths, at the
    /// cost of retaining run blocks until the sort completes (the
    /// in-place space bound grows by one run copy per replica).
    pub replication: usize,
    /// Capacity of the recycled block-buffer pool, in blocks. `0`
    /// (the default) derives the capacity from the machine's memory
    /// budget ([`MachineConfig::mem_blocks_per_pe`]); an explicit value
    /// below [`MachineConfig::min_pool_blocks`] is rejected at config
    /// validation. The pool bounds steady-state allocation only — it
    /// never changes what is read, written, or sent.
    pub pool_blocks: usize,
    /// Minimum records each merge thread must receive before the batch
    /// merge fans out; batches below `2 ×` this take the sequential
    /// path (no split probes). `0` (the default) uses the engine's
    /// built-in threshold and additionally caps merge threads at the
    /// host's available parallelism (oversubscribed threads only
    /// time-slice the same comparisons); an explicit value is taken
    /// literally with no host cap — tests set `1` to force parallelism
    /// on tiny inputs. Purely a CPU-scheduling knob — output bytes and
    /// I/O are identical at every value.
    pub par_merge_min_per_thread: usize,
}

impl Default for AlgoConfig {
    fn default() -> Self {
        Self {
            randomize: true,
            sample_every: 64,
            selection_cache_blocks: 16,
            overlap: true,
            seed: 0x5EED_CAFE,
            alltoall_mem_fraction: 0.5,
            replication: 0,
            pool_blocks: 0,
            par_merge_min_per_thread: 0,
        }
    }
}

impl AlgoConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if !(self.alltoall_mem_fraction > 0.0 && self.alltoall_mem_fraction <= 1.0) {
            return Err(Error::config("alltoall_mem_fraction must be in (0, 1]"));
        }
        Ok(())
    }

    /// The pool capacity this config yields on `machine`: the explicit
    /// [`pool_blocks`](Self::pool_blocks), or the memory budget in
    /// blocks when auto (`0`), never below the prefetch+carry minimum.
    pub fn effective_pool_blocks(&self, machine: &MachineConfig) -> usize {
        let blocks =
            if self.pool_blocks == 0 { machine.mem_blocks_per_pe() } else { self.pool_blocks };
        blocks.max(machine.min_pool_blocks())
    }
}

/// Reject an explicit pool capacity below the machine's prefetch+carry
/// minimum (`0` = auto is always fine).
fn validate_pool_blocks(algo: &AlgoConfig, machine: &MachineConfig) -> Result<()> {
    if algo.pool_blocks != 0 && algo.pool_blocks < machine.min_pool_blocks() {
        return Err(Error::config(format!(
            "pool_blocks {} is below the prefetch+carry minimum of {} \
             (2 per disk for double-buffered prefetch, plus carry and spare)",
            algo.pool_blocks,
            machine.min_pool_blocks()
        )));
    }
    Ok(())
}

/// Complete configuration for one sorting job.
#[derive(Clone, Debug)]
pub struct SortConfig {
    /// The machine.
    pub machine: MachineConfig,
    /// The algorithm switches.
    pub algo: AlgoConfig,
}

impl SortConfig {
    /// Bundle machine and algorithm configs, validating both (including
    /// cross-field constraints: every replica needs a distinct rank to
    /// live on, so `replication < pes`).
    pub fn new(machine: MachineConfig, algo: AlgoConfig) -> Result<Self> {
        machine.validate()?;
        algo.validate()?;
        validate_pool_blocks(&algo, &machine)?;
        if algo.replication >= machine.pes {
            return Err(Error::config(format!(
                "replication factor {} needs {} distinct ranks but the machine has only {} PEs",
                algo.replication,
                algo.replication + 1,
                machine.pes
            )));
        }
        Ok(Self { machine, algo })
    }

    /// Number of runs `R = ⌈total_bytes / M⌉` for an input of
    /// `total_bytes`.
    pub fn num_runs(&self, total_bytes: u64) -> usize {
        let m = self.machine.global_mem_bytes();
        total_bytes.div_ceil(m) as usize
    }
}

/// Which of the paper's sorting algorithms a job runs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SortAlgo {
    /// CANONICALMERGESORT (Section IV) — the DEMSort record-setter.
    #[default]
    Canonical,
    /// Mergesort with global striping (Section III) — the I/O-optimal
    /// variant; every pass re-stripes the data over all disks.
    Striped,
}

impl SortAlgo {
    /// Parse a CLI spelling (`canonical` / `striped`).
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "canonical" => Ok(SortAlgo::Canonical),
            "striped" => Ok(SortAlgo::Striped),
            other => {
                Err(Error::config(format!("unknown algorithm {other} (canonical or striped)")))
            }
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            SortAlgo::Canonical => "canonical",
            SortAlgo::Striped => "striped",
        }
    }
}

impl std::fmt::Display for SortAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete multi-process sort job: what the launcher ships to every
/// `demsort-worker` rank (serialized via [`crate::wire`]).
///
/// The machine config describes the *whole* cluster (`machine.pes` =
/// number of worker processes); each worker owns one rank's share of
/// it. Input and output are paths valid on every worker's host —
/// workers read disjoint shards of the input and write disjoint byte
/// ranges of the output, so the sorted result appears in place
/// (canonical mode concatenates per-rank slices; striped mode
/// interleaves each rank's globally striped blocks).
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Path of the input file (whole 100-byte SortBenchmark records).
    pub input: String,
    /// Path of the output file (pre-sized by the launcher in
    /// coordinator mode; in hostfile mode the workers create and size
    /// it themselves from the job's record count).
    pub output: String,
    /// The cluster shape.
    pub machine: MachineConfig,
    /// The algorithm switches (seeded — the job is deterministic).
    pub algo: AlgoConfig,
    /// Which sorting algorithm to run.
    pub algorithm: SortAlgo,
    /// Transport receive timeout: how long a rank waits on a silent
    /// peer before declaring the job dead.
    pub read_timeout_ms: u64,
    /// Directory for per-rank trace journals (empty = tracing off).
    /// Each worker appends [`crate::trace`] records to
    /// `<trace_dir>/rank<K>.jsonl` and streams coarse progress frames
    /// to the launcher; the directory must exist on every worker host.
    pub trace_dir: String,
}

impl JobConfig {
    /// Validate the embedded configs (including cross-field
    /// constraints: replication needs `replication < pes` spare ranks
    /// and is only implemented for the striped sort).
    pub fn validate(&self) -> Result<()> {
        self.machine.validate()?;
        self.algo.validate()?;
        validate_pool_blocks(&self.algo, &self.machine)?;
        if self.algo.replication >= self.machine.pes {
            return Err(Error::config(format!(
                "replication factor {} needs {} distinct ranks but the job has only {} PEs",
                self.algo.replication,
                self.algo.replication + 1,
                self.machine.pes
            )));
        }
        if self.algo.replication > 0 && self.algorithm != SortAlgo::Striped {
            return Err(Error::config(
                "run replication requires the striped algorithm (--algo striped)",
            ));
        }
        if self.read_timeout_ms == 0 {
            return Err(Error::config("read_timeout_ms must be > 0"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_config_validates_embedded_configs() {
        let mut job = JobConfig {
            input: "in".into(),
            output: "out".into(),
            machine: MachineConfig::tiny(2),
            algo: AlgoConfig::default(),
            algorithm: SortAlgo::default(),
            read_timeout_ms: 1000,
            trace_dir: String::new(),
        };
        job.validate().expect("valid");
        job.read_timeout_ms = 0;
        assert!(job.validate().is_err());
        job.read_timeout_ms = 1000;
        job.machine.pes = 0;
        assert!(job.validate().is_err());
    }

    #[test]
    fn paper_ratios() {
        let c = MachineConfig::paper(200);
        assert_eq!(c.mem_blocks_per_pe(), 2048);
        assert_eq!(c.total_disks(), 800);
        assert_eq!(c.global_mem_bytes(), 200 * (16u64 << 30));
    }

    #[test]
    fn small_preserves_mem_block_ratio() {
        let c = MachineConfig::small(8);
        assert_eq!(c.mem_blocks_per_pe(), MachineConfig::paper(8).mem_blocks_per_pe());
        c.validate().expect("valid");
    }

    #[test]
    fn validation_catches_zero_fields() {
        for f in [
            |c: &mut MachineConfig| c.pes = 0,
            |c: &mut MachineConfig| c.disks_per_pe = 0,
            |c: &mut MachineConfig| c.block_bytes = 0,
            |c: &mut MachineConfig| c.cores_per_pe = 0,
        ] {
            let mut c = MachineConfig::tiny(2);
            f(&mut c);
            assert!(c.validate().is_err(), "expected config error");
        }
    }

    #[test]
    fn validation_requires_four_blocks_of_memory() {
        let mut c = MachineConfig::tiny(2);
        c.mem_bytes_per_pe = 3 * c.block_bytes;
        assert!(c.validate().is_err());
    }

    #[test]
    fn run_count_rounds_up() {
        let cfg =
            SortConfig::new(MachineConfig::tiny(2), AlgoConfig::default()).expect("valid config");
        let m = cfg.machine.global_mem_bytes();
        assert_eq!(cfg.num_runs(m), 1);
        assert_eq!(cfg.num_runs(m + 1), 2);
        assert_eq!(cfg.num_runs(3 * m), 3);
    }

    #[test]
    fn replication_needs_spare_ranks_and_striped_mode() {
        let machine = MachineConfig::tiny(2);
        let algo = AlgoConfig { replication: 2, ..AlgoConfig::default() };
        let err = SortConfig::new(machine.clone(), algo.clone()).expect_err("2 replicas on 2 PEs");
        assert!(matches!(err, Error::Config(m) if m.contains("replication")), "wrong error");

        let mut job = JobConfig {
            input: "in".into(),
            output: "out".into(),
            machine,
            algo,
            algorithm: SortAlgo::Striped,
            read_timeout_ms: 1000,
            trace_dir: String::new(),
        };
        assert!(job.validate().is_err(), "2 replicas on 2 PEs");
        job.algo.replication = 1;
        job.validate().expect("1 replica on 2 PEs is fine");
        job.algorithm = SortAlgo::Canonical;
        let err = job.validate().expect_err("replication is striped-only");
        assert!(matches!(err, Error::Config(m) if m.contains("striped")), "wrong error");
    }

    #[test]
    fn pool_blocks_below_minimum_is_a_config_error() {
        let machine = MachineConfig::tiny(2); // 2 disks -> minimum 6
        assert_eq!(machine.min_pool_blocks(), 6);
        let algo = AlgoConfig { pool_blocks: 5, ..AlgoConfig::default() };
        let err = SortConfig::new(machine.clone(), algo.clone()).expect_err("too small");
        assert!(matches!(err, Error::Config(m) if m.contains("pool_blocks")), "wrong error");
        let mut job = JobConfig {
            input: "in".into(),
            output: "out".into(),
            machine: machine.clone(),
            algo,
            algorithm: SortAlgo::Striped,
            read_timeout_ms: 1000,
            trace_dir: String::new(),
        };
        assert!(matches!(job.validate(), Err(Error::Config(m)) if m.contains("pool_blocks")));
        job.algo.pool_blocks = 6;
        job.validate().expect("at the minimum is fine");
        job.algo.pool_blocks = 0;
        job.validate().expect("auto is always fine");
        // Auto derives from the memory budget; explicit values pass through.
        assert_eq!(
            job.algo.effective_pool_blocks(&machine),
            machine.mem_blocks_per_pe().max(machine.min_pool_blocks())
        );
        job.algo.pool_blocks = 9;
        assert_eq!(job.algo.effective_pool_blocks(&machine), 9);
    }

    #[test]
    fn alltoall_fraction_validated() {
        let mut a = AlgoConfig { alltoall_mem_fraction: 0.0, ..AlgoConfig::default() };
        assert!(a.validate().is_err());
        a.alltoall_mem_fraction = 1.5;
        assert!(a.validate().is_err());
        a.alltoall_mem_fraction = 1.0;
        assert!(a.validate().is_ok());
    }
}
