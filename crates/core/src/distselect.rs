//! Exact selection over *distributed* sorted sequences.
//!
//! The distributed internal sort (Section IV-B) splits `P` sorted
//! sequences — one per PE, resident in that PE's memory — into `P`
//! pieces of equal global size. The split must be **exact** (this is
//! the paper's key difference from NOW-Sort and sample sort, whose
//! approximate splitters degrade on worst-case inputs).
//!
//! The in-memory multiway selection of Section IV-A probes sequences
//! one element at a time, which is fine locally but would serialize
//! into `O(R log M)` communication rounds when every probe crosses the
//! network. Here we use the standard bulk-synchronous equivalent:
//! **weighted-median pivoting**. Each round, every PE contributes the
//! median of its active range (a single record) and its active size;
//! the weighted median of those medians becomes the pivot; ranks are
//! counted with two local binary searches and one allreduce. Each round
//! discards at least a quarter of the active elements, so the search
//! finishes in `O(log N)` rounds of `O(P)`-byte messages — the same
//! exact result as the paper's selection, with communication that
//! scales.
//!
//! Ties are broken canonically by PE rank: of equal keys, lower-ranked
//! PEs' elements count as smaller. This makes the returned split unique
//! and is the same convention as [`crate::selection`].

use demsort_net::Communicator;
use demsort_types::{Error, Record, Result};

/// Number of elements of `local` (this PE's sorted sequence) that fall
/// strictly left of the global partition at rank `r`.
///
/// Collective: every PE must call this with the same `r`. The result
/// differs per PE; summed over PEs it equals `r`.
///
/// # Errors
/// [`Error::Comm`](demsort_types::Error) if a peer dies or goes silent
/// during any pivot round — every surviving PE gets the error.
///
/// # Panics
/// Panics (on every PE) if `r` exceeds the global element count.
pub fn dist_select_rank<R: Record + Ord>(
    comm: &Communicator,
    local: &[R],
    r: u64,
) -> Result<usize> {
    debug_assert!(local.windows(2).all(|w| w[0].key() <= w[1].key()), "local must be sorted");
    let total = comm.allreduce_sum(local.len() as u64)?;
    assert!(r <= total, "rank {r} > total {total}");
    if r == 0 {
        return Ok(0);
    }
    if r == total {
        return Ok(local.len());
    }

    // Active range of candidate split positions in the local sequence.
    let (mut lo, mut hi) = (0usize, local.len());
    // Each round discards ≥ 1/4 of the global active weight, so
    // ⌈log4/3 N⌉ rounds suffice; the bound turns a logic bug into an
    // error on every PE instead of a distributed hang.
    let max_rounds = 8 + 4 * (64 - total.leading_zeros() as usize);
    for _round in 0..max_rounds {
        let weight = (hi - lo) as u64;
        // Candidate pivot: the median record of the active range.
        let candidate = if weight > 0 { Some(local[lo + (hi - lo) / 2]) } else { None };
        let pivot = weighted_median(comm, candidate, weight)?;
        let Some((pk, _ppe)) = pivot else {
            // No PE has active elements left: the split is pinned.
            debug_assert_eq!(comm.allreduce_sum(lo as u64)?, r);
            return Ok(lo);
        };

        // Count, over the *whole* local sequence, elements with keys
        // strictly below the pivot key, and at-or-below it.
        let lt = local.partition_point(|x| x.key() < pk);
        let le = local.partition_point(|x| x.key() <= pk);
        let c_lt = comm.allreduce_sum(lt as u64)?; // elements with key < pk
        let c_le = comm.allreduce_sum(le as u64)?; // elements with key <= pk

        if r <= c_lt {
            // Split lies among keys < pk: discard everything >= pk.
            hi = hi.min(lt);
            lo = lo.min(hi);
        } else if r >= c_le {
            // Split lies among keys > pk: keep everything <= pk left.
            lo = lo.max(le);
            hi = hi.max(lo);
        } else {
            // The split lands inside the band of keys == pk. Assign the
            // `r - c_lt` in-band slots to PEs in rank order.
            let eq = (le - lt) as u64;
            let before_me = comm.exscan_sum(eq)?;
            let remaining = (r - c_lt).saturating_sub(before_me);
            return Ok(lt + remaining.min(eq) as usize);
        }
    }
    Err(Error::validation(format!("distributed selection did not converge in {max_rounds} rounds")))
}

/// Split the distributed sequence into `parts` equal pieces: returns the
/// `parts + 1` local cut positions for this PE (monotone, covering
/// `0..local.len()`).
///
/// # Errors
/// [`Error::Comm`](demsort_types::Error) on the first failed collective
/// of any underlying selection round.
pub fn dist_split<R: Record + Ord>(
    comm: &Communicator,
    local: &[R],
    parts: usize,
) -> Result<Vec<usize>> {
    assert!(parts > 0);
    let total = comm.allreduce_sum(local.len() as u64)?;
    let mut cuts = Vec::with_capacity(parts + 1);
    cuts.push(0);
    for p in 1..parts {
        let r = (p as u128 * total as u128 / parts as u128) as u64;
        cuts.push(dist_select_rank(comm, local, r)?);
    }
    cuts.push(local.len());
    debug_assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts must be monotone: {cuts:?}");
    Ok(cuts)
}

/// Weighted median of one candidate record per PE.
///
/// Returns `(key, pe)` of the weighted median candidate under the
/// (key, pe) order, or `None` if every PE's weight is zero.
fn weighted_median<R: Record + Ord>(
    comm: &Communicator,
    candidate: Option<R>,
    weight: u64,
) -> Result<Option<(R::Key, usize)>> {
    // Allgather (weight, encoded record); weight 0 = no candidate.
    let mut msg = vec![0u8; 8 + R::BYTES];
    msg[..8].copy_from_slice(&weight.to_le_bytes());
    if let Some(c) = candidate {
        c.encode(&mut msg[8..]);
    }
    let gathered = comm.allgather(msg)?;

    let mut cands: Vec<(R::Key, usize, u64)> = gathered
        .iter()
        .enumerate()
        .filter_map(|(pe, m)| {
            let w = u64::from_le_bytes(m[..8].try_into().expect("8-byte weight"));
            (w > 0).then(|| (R::decode(&m[8..]).key(), pe, w))
        })
        .collect();
    if cands.is_empty() {
        return Ok(None);
    }
    cands.sort_by_key(|a| (a.0, a.1));
    let total: u64 = cands.iter().map(|c| c.2).sum();
    let mut acc = 0u64;
    for (k, pe, w) in &cands {
        acc += w;
        if acc * 2 >= total {
            return Ok(Some((*k, *pe)));
        }
    }
    // The final iteration has `acc == total`, and `2 · total ≥ total`
    // always holds, so the loop returns before reaching here. Fall
    // back to the largest candidate rather than asserting, keeping
    // core panic-free.
    let (k, pe, _) = cands.last().expect("candidates checked non-empty above");
    Ok(Some((*k, *pe)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use demsort_net::run_cluster;
    use demsort_types::Element16;
    use demsort_workloads::splitmix64;
    use proptest::prelude::*;

    /// Run a distributed selection and verify exactness against the
    /// globally sorted reference.
    fn check_select(locals: Vec<Vec<Element16>>, r: u64) {
        let p = locals.len();
        let locals_ref = &locals;
        let positions = run_cluster(p, move |c| {
            let mine = &locals_ref[c.rank()];
            dist_select_rank(&c, mine, r).expect("select")
        });
        let total: u64 = positions.iter().map(|&x| x as u64).sum();
        assert_eq!(total, r, "positions must sum to the rank");
        // Partition property under (key, pe) order.
        let max_left = locals
            .iter()
            .enumerate()
            .filter(|(i, _)| positions[*i] > 0)
            .map(|(i, s)| (s[positions[i] - 1].key, i))
            .max();
        let min_right = locals
            .iter()
            .enumerate()
            .filter(|(i, s)| positions[*i] < s.len())
            .map(|(i, s)| (s[positions[i]].key, i))
            .min();
        if let (Some(l), Some(rr)) = (max_left, min_right) {
            assert!(l <= rr, "misordered: left {l:?} right {rr:?}");
        }
    }

    fn sorted_locals(p: usize, n: usize, seed: u64) -> Vec<Vec<Element16>> {
        (0..p)
            .map(|pe| {
                let mut v: Vec<Element16> = (0..n as u64)
                    .map(|i| {
                        let gid = pe as u64 * n as u64 + i;
                        Element16::new(splitmix64(seed ^ gid) % 1000, gid)
                    })
                    .collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    #[test]
    fn selects_exact_ranks_random_data() {
        let locals = sorted_locals(4, 250, 7);
        for r in [0u64, 1, 17, 500, 999, 1000] {
            check_select(locals.clone(), r);
        }
    }

    #[test]
    fn single_pe_degenerates_to_position() {
        let locals = sorted_locals(1, 100, 3);
        for r in [0u64, 50, 100] {
            check_select(locals.clone(), r);
        }
    }

    #[test]
    fn unbalanced_and_empty_locals() {
        let mut locals = sorted_locals(4, 100, 11);
        locals[1].clear();
        locals[2].truncate(5);
        let total: u64 = locals.iter().map(|l| l.len() as u64).sum();
        for r in [0, 1, total / 2, total] {
            check_select(locals.clone(), r);
        }
    }

    #[test]
    fn all_duplicate_keys_split_by_pe_order() {
        let p = 3;
        let locals: Vec<Vec<Element16>> =
            (0..p).map(|pe| vec![Element16::new(42, pe as u64); 10]).collect();
        let locals_ref = &locals;
        let positions = run_cluster(p, move |c| {
            dist_select_rank(&c, &locals_ref[c.rank()], 15).expect("select")
        });
        // Canonical: PE 0's 10 elements, then 5 from PE 1.
        assert_eq!(positions, vec![10, 5, 0]);
    }

    #[test]
    fn dist_split_produces_equal_parts() {
        let locals = sorted_locals(5, 200, 23);
        let locals_ref = &locals;
        let all_cuts =
            run_cluster(5, move |c| dist_split(&c, &locals_ref[c.rank()], 5).expect("split"));
        // Every part has global size 200.
        for part in 0..5 {
            let size: usize = all_cuts.iter().map(|cuts| cuts[part + 1] - cuts[part]).sum();
            assert_eq!(size, 200, "part {part}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn dist_select_exact_arbitrary(
            sizes in prop::collection::vec(0usize..60, 2..5),
            key_range in 1u64..50,
            frac in 0.0f64..=1.0,
            seed in 0u64..1000,
        ) {
            let locals: Vec<Vec<Element16>> = sizes
                .iter()
                .enumerate()
                .map(|(pe, &n)| {
                    let mut v: Vec<Element16> = (0..n as u64)
                        .map(|i| {
                            let gid = pe as u64 * 1000 + i;
                            Element16::new(splitmix64(seed ^ gid) % key_range, gid)
                        })
                        .collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let total: u64 = locals.iter().map(|l| l.len() as u64).sum();
            let r = ((total as f64) * frac) as u64;
            check_select(locals, r.min(total));
        }
    }
}
